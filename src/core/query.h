#ifndef COLR_CORE_QUERY_H_
#define COLR_CORE_QUERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "core/aggregate.h"
#include "geo/geo.h"
#include "sensor/sensor.h"

namespace colr {

/// Spatial query region: a rectangle (the common viewport case) with
/// an optional polygon refinement (§III-B allows polygonal regions).
/// Tree navigation always uses the bounding box; the polygon, when
/// present, refines containment and per-sensor membership tests.
struct QueryRegion {
  Rect bbox;
  std::optional<Polygon> polygon;

  static QueryRegion FromRect(const Rect& r) { return {r, std::nullopt}; }
  static QueryRegion FromPolygon(Polygon p) {
    QueryRegion q;
    q.bbox = p.bounding_box();
    q.polygon = std::move(p);
    return q;
  }

  bool Contains(const Point& p) const {
    if (!bbox.Contains(p)) return false;
    return !polygon || polygon->Contains(p);
  }

  bool Contains(const Rect& r) const {
    if (!bbox.Contains(r)) return false;
    return !polygon || polygon->Contains(r);
  }

  bool Intersects(const Rect& r) const {
    if (!bbox.Intersects(r)) return false;
    return !polygon || polygon->Intersects(r);
  }
};

/// A SensorMap portal query (§III-B):
///
///   SELECT agg(*) FROM sensor S
///   WHERE S.location WITHIN <region>
///     AND S.time BETWEEN now()-staleness AND now()
///   CLUSTER <level>            -- result granularity (zoom level)
///   SAMPLESIZE <sample_size>   -- probe budget (0 = exact, probe all)
struct Query {
  QueryRegion region;
  /// Maximum acceptable staleness of readings.
  TimeMs staleness_ms = 5 * kMsPerMinute;
  /// Target sample size R; <= 0 disables sampling (collect from every
  /// sensor in the region).
  int sample_size = 0;
  /// Result granularity: one group per tree node at this level (the T
  /// threshold of Algorithm 1, derived from the map zoom level /
  /// CLUSTER clause). Negative = group at leaf level.
  int cluster_level = 2;
  AggregateKind agg = AggregateKind::kCount;
  /// Materialize the individual contributing readings (SELECT *):
  /// cache-served readings are copied into
  /// QueryResult::served_from_cache and internal-aggregate shortcuts
  /// that cannot yield raw readings are disabled.
  bool return_readings = false;
  /// > 0: fill GroupResult::histogram with this many buckets over
  /// [histogram_lo, histogram_hi]. Per-reading distributions require
  /// raw values, so aggregate-only shortcuts are disabled (as with
  /// return_readings).
  int histogram_buckets = 0;
  double histogram_lo = 0.0;
  double histogram_hi = 100.0;
};

/// One multi-resolution result group (a cluster of near-by sensors at
/// the requested zoom level, §III-B).
struct GroupResult {
  /// Tree node the group corresponds to (-1 for non-tree engines).
  int node_id = -1;
  Rect bbox;
  /// Aggregate over the readings contributing to this group (cached +
  /// freshly probed). With sampling this is the sample aggregate.
  Aggregate agg;
  /// Total sensors in the group (the group's weight) — lets clients
  /// scale sample counts into estimates.
  int weight = 0;
  /// Value distribution of the group's individual readings (the
  /// intro's "distribution of waiting times for each group"); filled
  /// only when Query::histogram_buckets > 0 and sized accordingly.
  /// Bucket i counts values in [lo + i*w, lo + (i+1)*w) over the
  /// query-wide range [histogram_lo, histogram_hi]; out-of-range
  /// values clamp to the edge buckets.
  std::vector<int> histogram;
};

/// Per-terminal sampling accounting, the input to Fig. 6's probe
/// discretization error.
struct TerminalRecord {
  int node_id = -1;
  /// Target share assigned to the terminal (before oversampling).
  double target = 0.0;
  int probes_attempted = 0;
  int probes_succeeded = 0;
  int64_t cached_used = 0;
};

/// Counters mirroring the paper's instrumentation: node traversals
/// (Fig. 3), cache accesses (Fig. 3 inset), sensor probes (Fig. 4/5),
/// processing and collection latency (Fig. 4).
struct QueryStats {
  int64_t nodes_traversed = 0;
  int64_t internal_nodes_traversed = 0;
  /// Nodes whose slot cache contributed to the answer.
  int64_t cached_nodes_accessed = 0;
  int64_t sensors_probed = 0;
  int64_t probe_successes = 0;
  /// Raw cached readings used (leaf hits).
  int64_t cache_readings_used = 0;
  /// Readings represented by cached aggregates at internal terminals.
  int64_t cached_agg_readings = 0;
  int64_t slots_merged = 0;
  /// Probe requests satisfied by joining another query's in-flight
  /// probe (cross-query single-flight; not counted in sensors_probed).
  int64_t probes_coalesced = 0;
  /// Probe requests served from a sensor's last completed probe by
  /// the rate limiter's reuse window.
  int64_t probes_reused = 0;
  /// Probe requests dropped by the rate limiter / admission bound.
  int64_t probes_shed = 0;
  /// Wall-clock query processing time of this engine (excludes
  /// simulated network time).
  double processing_ms = 0.0;
  /// Magnitude of negative (elapsed - sim_wall) skew, surfaced
  /// instead of silently clamped into processing_ms; nonzero means
  /// the network wall-time accounting double-counted somewhere and
  /// tests assert it stays zero.
  double processing_skew_ms = 0.0;
  /// Simulated data-collection latency: total over the query's
  /// sequential probe batches (each batch already the max over its
  /// parallel probes and joined flights).
  TimeMs collection_latency_ms = 0;
  /// Readings contributing to the result (probed successes + cached).
  int64_t result_size = 0;
  /// Sensors inside the region (the "ideal result set size"); filled
  /// by the engine when requested.
  int64_t region_sensor_count = -1;

  std::vector<TerminalRecord> terminals;

  void MergeCounters(const QueryStats& other);
};

struct QueryResult {
  std::vector<GroupResult> groups;
  /// Readings freshly collected by this query.
  std::vector<Reading> collected;
  /// Cached readings that contributed (filled only when
  /// Query::return_readings is set).
  std::vector<Reading> served_from_cache;
  QueryStats stats;

  /// Merge of all group aggregates.
  Aggregate Total() const {
    Aggregate a;
    for (const GroupResult& g : groups) a.Merge(g.agg);
    return a;
  }
};

}  // namespace colr

#endif  // COLR_CORE_QUERY_H_
