#include "core/sampling.h"

#include <algorithm>
#include <cmath>

namespace colr {

int ProbabilisticRound(double x, Rng& rng) {
  if (x <= 0.0) return 0;
  const double fl = std::floor(x);
  const double frac = x - fl;
  return static_cast<int>(fl) + (rng.Bernoulli(frac) ? 1 : 0);
}

namespace {

struct QueueEntry {
  double r = 0.0;  // target sample size assigned to this node
  int node = -1;
};

struct EntryLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    return a.r < b.r;
  }
};

constexpr double kMinAvailability = 0.02;
constexpr double kMinTarget = 1e-9;

class Runner {
 public:
  Runner(const ColrTree& tree, const QueryRegion& region, TimeMs now,
         TimeMs staleness_ms, const LayeredSampler::Options& options,
         Rng& rng, const LayeredSampler::ProbeFn& probe)
      : tree_(tree),
        region_(region),
        now_(now),
        staleness_(staleness_ms),
        options_(options),
        rng_(rng),
        probe_(probe) {}

  LayeredSampler::Result Run() {
    if (tree_.root() < 0 || options_.target <= 0.0) return result_;
    const ColrTree::Node& root = tree_.node(tree_.root());
    if (!region_.Intersects(root.bbox)) return result_;

    if (IsTerminal(root)) {
      // Degenerate tree (leaf root) or a region covering everything
      // with a negative threshold: probe directly.
      ProcessTerminal(options_.target, tree_.root());
      return result_;
    }

    heap_.push_back(QueueEntry{options_.target, tree_.root()});
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), EntryLess{});
      QueueEntry entry = heap_.back();
      heap_.pop_back();
      if (entry.r < kMinTarget) continue;
      Expand(entry);
    }
    return std::move(result_);
  }

 private:
  double Availability(int node_id) const {
    return std::max<double>(tree_.mean_availability(node_id),
                            kMinAvailability);
  }

  /// Terminal nodes: leaves (nothing below to descend into), or nodes
  /// strictly below the result threshold level T whose bounding box
  /// lies entirely inside the query region (§III-C lookup).
  bool IsTerminal(const ColrTree::Node& n) const {
    if (n.IsLeaf()) return true;
    return n.level > options_.terminal_level && region_.Contains(n.bbox);
  }

  void Expand(const QueueEntry& entry) {
    ++result_.nodes_traversed;
    ++result_.internal_nodes_traversed;

    // Weighted partitioning denominator: sum over relevant children of
    // w_i * Overlap(BB(i), A)  (Algorithm 1, lines 9/17).
    double denom = 0.0;
    for (int c : tree_.children(entry.node)) {
      const ColrTree::Node& child = tree_.node(c);
      if (!region_.Intersects(child.bbox)) continue;
      denom += child.Weight() * OverlapFraction(child.bbox, region_.bbox);
    }
    if (denom <= 0.0) return;

    double total_fetched = 0.0;
    for (int c : tree_.children(entry.node)) {
      const ColrTree::Node& child = tree_.node(c);
      if (!region_.Intersects(child.bbox)) continue;
      double share = entry.r * child.Weight() *
                     OverlapFraction(child.bbox, region_.bbox) / denom;
      // Probabilistic pruning of low-share subtrees ("the sampling
      // heuristic further reduces the nodes we consider traversing at
      // lower layers", §VI-A): a child allocated less than one
      // expected sample is visited with probability share/1 carrying
      // a boosted share of 1. The expected allocation — and hence
      // Theorem 1's E[sample] = R and Theorem 2's per-sensor
      // inclusion probability — is unchanged; only the variance grows
      // slightly, in exchange for far fewer node visits.
      constexpr double kMinShare = 1.0;
      if (share < kMinShare) {
        if (!rng_.Bernoulli(share / kMinShare)) {
          total_fetched += share;  // satisfied in expectation
          continue;
        }
        total_fetched += share - kMinShare;  // the boost is not a lack
        share = kMinShare;
      }
      if (IsTerminal(child)) {
        total_fetched += ProcessTerminal(share, c);
      } else {
        heap_.push_back(QueueEntry{share, c});
        std::push_heap(heap_.begin(), heap_.end(), EntryLess{});
        total_fetched += share;
      }
    }

    // REDISTRIBUTE (Algorithm 2): spread the shortfall over pending
    // nodes proportionally to their current targets. A uniform
    // positive scaling preserves the heap order.
    if (options_.redistribute && total_fetched < entry.r &&
        !heap_.empty()) {
      double pending = 0.0;
      for (const QueueEntry& e : heap_) pending += e.r;
      if (pending > kMinTarget) {
        const double factor = 1.0 + (entry.r - total_fetched) / pending;
        for (QueueEntry& e : heap_) e.r *= factor;
      }
    }
  }

  /// Handles a terminal node: consult the cache, oversample, probe.
  /// Returns the expected contribution credited against the parent's
  /// target: the cached readings plus the expected number of
  /// successful probes. Crediting the *fractional* expectation (not
  /// the rounded probe count) keeps REDISTRIBUTE from amplifying
  /// rounding noise — only genuine shortfall (holes, exhausted
  /// candidates) is redistributed, which is what preserves Theorem 1's
  /// E[sample] = R invariant.
  double ProcessTerminal(double share, int node_id) {
    const ColrTree::Node& n = tree_.node(node_id);
    ++result_.nodes_traversed;
    if (!n.IsLeaf()) ++result_.internal_nodes_traversed;

    LayeredSampler::Terminal t;
    t.node_id = node_id;
    t.target = share;

    const bool partial = !region_.Contains(n.bbox);
    if (options_.use_cache) {
      if (n.IsLeaf()) {
        Rect filter = region_.bbox;
        ColrTree::CacheLookup lookup = tree_.LookupCache(
            node_id, now_, staleness_, partial ? &filter : nullptr);
        // Polygon refinement for cached leaf readings (the lookup
        // copies used readings out under the store lock, so no store
        // pointers are dereferenced here).
        if (region_.polygon) {
          ColrTree::CacheLookup refined;
          for (size_t i = 0; i < lookup.used_sensors.size(); ++i) {
            const SensorId sid = lookup.used_sensors[i];
            if (region_.Contains(tree_.sensor(sid).location)) {
              refined.agg.Add(lookup.used_readings[i].value);
              refined.used_sensors.push_back(sid);
              refined.used_readings.push_back(lookup.used_readings[i]);
            }
          }
          lookup = std::move(refined);
        }
        t.cached_agg = lookup.agg;
        t.cached_count = lookup.agg.count;
        t.cached_sensors = std::move(lookup.used_sensors);
        t.cached_readings = std::move(lookup.used_readings);
      } else {
        ColrTree::CacheLookup lookup =
            tree_.LookupCache(node_id, now_, staleness_);
        t.cached_agg = lookup.agg;
        t.cached_count = lookup.agg.count;
        t.cached_slots_merged = lookup.slots_merged;
      }
      if (t.cached_count > 0) ++result_.cached_nodes_accessed;
    }

    // Probe target: share minus what the cache already covers
    // (line 9), scaled up by the node's historical availability
    // (lines 10-11; we apply the single per-path scale-up at the
    // probing node itself, where the availability estimate is most
    // local — see DESIGN.md).
    const double availability = Availability(node_id);
    const double need = share - static_cast<double>(t.cached_count);
    double scaled_need = need;
    if (options_.oversample && need > 0.0) {
      scaled_need = need / availability;
    }
    double credited_probes = 0.0;
    if (scaled_need > 0.0) {
      int k = ProbabilisticRound(scaled_need, rng_);
      std::vector<SensorId> candidates = ProbeCandidates(n, t);
      k = std::min<int>(k, static_cast<int>(candidates.size()));
      credited_probes =
          std::min(scaled_need, static_cast<double>(candidates.size()));
      if (k > 0) {
        std::vector<SensorId> picked;
        picked.reserve(k);
        for (uint64_t idx :
             rng_.SampleWithoutReplacement(candidates.size(), k)) {
          picked.push_back(candidates[idx]);
        }
        t.probes_attempted = k;
        t.collected = probe_(picked);
      }
    }

    // Expected contribution: with oversampling, each attempted probe
    // yields a reading with probability ~availability; without it,
    // attempts are credited as-is (the paper's line 13).
    const double fetched =
        static_cast<double>(t.cached_count) +
        credited_probes * (options_.oversample ? availability : 1.0);
    result_.terminals.push_back(std::move(t));
    return fetched;
  }

  /// Sensors under the terminal that are inside the region and not
  /// already served by the cache.
  std::vector<SensorId> ProbeCandidates(const ColrTree::Node& n,
                                        const LayeredSampler::Terminal& t) {
    const bool partial = !region_.Contains(n.bbox) || region_.polygon;
    std::vector<SensorId> candidates;
    candidates.reserve(n.Weight());
    const SlotId qslot = tree_.QuerySlot(now_, staleness_);
    const auto& order = tree_.sensor_order();
    for (int j = n.item_begin; j < n.item_end; ++j) {
      const SensorId sid = order[j];
      if (partial && !region_.Contains(tree_.sensor(sid).location)) {
        continue;
      }
      if (options_.use_cache) {
        if (n.IsLeaf()) {
          // Exclude the exact set the leaf lookup used.
          if (std::find(t.cached_sensors.begin(), t.cached_sensors.end(),
                        sid) != t.cached_sensors.end()) {
            continue;
          }
        } else {
          // Same slot rule the internal aggregate lookup used.
          if (tree_.CachedInNewerSlot(sid, qslot)) continue;
        }
      }
      candidates.push_back(sid);
    }
    return candidates;
  }

  const ColrTree& tree_;
  const QueryRegion& region_;
  const TimeMs now_;
  const TimeMs staleness_;
  const LayeredSampler::Options& options_;
  Rng& rng_;
  const LayeredSampler::ProbeFn& probe_;
  std::vector<QueueEntry> heap_;
  LayeredSampler::Result result_;
};

}  // namespace

LayeredSampler::Result LayeredSampler::Run(
    const ColrTree& tree, const QueryRegion& region, TimeMs now,
    TimeMs staleness_ms, const Options& options, Rng& rng,
    const ProbeFn& probe) {
  Runner runner(tree, region, now, staleness_ms, options, rng, probe);
  return runner.Run();
}

}  // namespace colr
