#include "core/tree.h"

#include <algorithm>
#include <cmath>

namespace colr {

namespace {

TimeMs ResolveTmax(const ColrTree::Options& options,
                   const std::vector<SensorInfo>& sensors) {
  TimeMs t_max = options.t_max_ms;
  if (t_max <= 0) {
    for (const SensorInfo& s : sensors) {
      t_max = std::max(t_max, s.expiry_ms);
    }
    if (t_max <= 0) t_max = kMsPerMinute;
  }
  return t_max;
}

SlotScheme MakeScheme(const ColrTree::Options& options, TimeMs t_max) {
  TimeMs delta = options.slot_delta_ms;
  if (delta <= 0) delta = std::max<TimeMs>(1, t_max / 4);
  const TimeMs margin =
      options.stale_margin_ms >= 0 ? options.stale_margin_ms : t_max;
  return SlotScheme(delta, t_max + margin);
}

}  // namespace

ColrTree::ColrTree(std::vector<SensorInfo> sensors, Options options)
    : options_(options),
      sensors_(std::move(sensors)),
      t_max_ms_(ResolveTmax(options, sensors_)),
      scheme_(MakeScheme(options, t_max_ms_)) {
  if (options_.sync_stats) SyncStatsRegistry::Enable();
  std::vector<Point> points;
  points.reserve(sensors_.size());
  for (const SensorInfo& s : sensors_) points.push_back(s.location);

  // The cluster build emits a pointer-style DFS-preorder tree; the
  // arena renumbers it into the flat breadth-ordered layout. The
  // item_order permutation is a property of the clustering, not of the
  // node numbering, so item ranges carry over verbatim.
  ClusterTree ct = BuildClusterTree(points, options_.cluster);
  arena_ = NodeArena(ct);
  root_ = arena_.root();
  height_ = arena_.height();
  sensor_order_.reserve(ct.item_order.size());
  for (int idx : ct.item_order) {
    sensor_order_.push_back(static_cast<SensorId>(idx));
  }
  leaf_of_sensor_.assign(sensors_.size(), -1);

  const size_t num_nodes = arena_.size();
  caches_.resize(num_nodes);
  availability_ = std::vector<AtomicDouble>(num_nodes);
  leaf_tables_.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    ArenaNodeRecord& n = arena_.mutable_record(static_cast<int>(i));
    caches_[i].Resize(scheme_.num_slots());

    double avail_sum = 0.0;
    for (int j = n.item_begin; j < n.item_end; ++j) {
      const SensorInfo& s = sensors_[sensor_order_[j]];
      avail_sum += s.availability;
      n.max_expiry_ms = std::max(n.max_expiry_ms, s.expiry_ms);
    }
    availability_[i] = n.Weight() > 0 ? avail_sum / n.Weight() : 1.0;

    if (n.IsLeaf()) {
      for (int j = n.item_begin; j < n.item_end; ++j) {
        leaf_of_sensor_[sensor_order_[j]] = static_cast<int>(i);
      }
    }
  }

  // Resolve the writer-sharding level against the built hierarchy.
  // Auto picks level 1 (the root's children): the root region then
  // spans just two nodes per path, maximizing the portion of the
  // leaf-to-root propagation that disjoint shards run concurrently.
  const int max_level = std::max(0, height_ - 1);
  shard_level_ = options_.writer_shard_level >= 0
                     ? std::min(options_.writer_shard_level, max_level)
                     : std::min(1, max_level);

  // One reading store per shard, all stamping fetches from one shared
  // sequence so the cross-shard eviction order stays globally exact.
  // Store capacities are unbounded; the tree enforces
  // options_.cache_capacity across all of them.
  store_index_of_node_.assign(arena_.size(), -1);
  for (size_t i = 0; i < arena_.size(); ++i) {
    if (!arena_.record(static_cast<int>(i)).IsLeaf()) continue;
    const int shard = ShardOf(static_cast<int>(i));
    if (store_index_of_node_[shard] < 0) {
      store_index_of_node_[shard] =
          static_cast<int>(shard_node_of_store_.size());
      shard_node_of_store_.push_back(shard);
    }
  }
  stores_ = std::vector<ReadingStore>(shard_node_of_store_.size());
  for (ReadingStore& store : stores_) store.set_sequence_source(&fetch_seq_);
}

int ColrTree::CountSensorsInRegion(const Rect& region) const {
  if (root_ < 0) return 0;
  int count = 0;
  std::vector<int> stack{root_};
  std::vector<int> hits(static_cast<size_t>(arena_.max_fanout()));
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Node& n = arena_.record(id);
    if (!n.bbox.Intersects(region)) continue;
    if (region.Contains(n.bbox)) {
      count += n.Weight();
      continue;
    }
    if (n.IsLeaf()) {
      for (int j = n.item_begin; j < n.item_end; ++j) {
        if (region.Contains(sensors_[sensor_order_[j]].location)) ++count;
      }
    } else {
      // Vectorized child-MBR scan over the node's contiguous child
      // block; only overlapping children are pushed.
      const int k = arena_.OverlapChildren(id, region, hits.data());
      for (int t = 0; t < k; ++t) stack.push_back(hits[t]);
    }
  }
  return count;
}

int ColrTree::LevelForClusterDistance(double distance) const {
  if (height_ <= 1) return 0;
  // Mean bbox diagonal per level, coarse to fine. Arena ids are
  // breadth-ordered, so this pass accumulates each level's diagonals
  // in the same left-to-right node order as the pointer layout did —
  // the per-level floating-point sums are bit-identical.
  std::vector<double> sum(height_, 0.0);
  std::vector<int> count(height_, 0);
  for (size_t i = 0; i < arena_.size(); ++i) {
    const Node& n = arena_.record(static_cast<int>(i));
    const double dx = n.bbox.Width();
    const double dy = n.bbox.Height();
    sum[n.level] += std::sqrt(dx * dx + dy * dy);
    ++count[n.level];
  }
  for (int level = 0; level < height_; ++level) {
    if (count[level] == 0) continue;
    if (sum[level] / count[level] <= distance) return level;
  }
  return height_ - 1;
}

void ColrTree::RefreshAvailability(const std::vector<double>& estimates) {
  for (size_t i = 0; i < arena_.size(); ++i) {
    const Node& n = arena_.record(static_cast<int>(i));
    double total = 0.0;
    for (int j = n.item_begin; j < n.item_end; ++j) {
      const SensorId sid = sensor_order_[j];
      total += sid < estimates.size() ? estimates[sid]
                                      : sensors_[sid].availability;
    }
    availability_[i] = n.Weight() > 0 ? total / n.Weight() : 1.0;
  }
}

std::vector<SensorId> ColrTree::SensorsUnderInRegion(
    int node_id, const Rect& region) const {
  const Node& n = arena_.record(node_id);
  std::vector<SensorId> out;
  out.reserve(n.Weight());
  const bool full = region.Contains(n.bbox);
  for (int j = n.item_begin; j < n.item_end; ++j) {
    const SensorId sid = sensor_order_[j];
    if (full || region.Contains(sensors_[sid].location)) {
      out.push_back(sid);
    }
  }
  return out;
}

void ColrTree::ExpungeAfterRoll() {
  // Caller holds the exclusive epoch: no writer, toucher or evictor
  // is active (they all hold the shared side), so the per-shard
  // stores can be walked without their shard locks. No aggregate
  // propagation: the expunged slots are outside the window, so their
  // ring positions lazily reset on reuse.
  size_t total = 0;
  for (ReadingStore& store : stores_) {
    const std::vector<Reading> expunged = store.ExpungeExpiredSlots(scheme_);
    total += expunged.size();
    for (const Reading& r : expunged) RemoveFromLeafCachedSet(r.sensor);
  }
  maintenance_.readings_expunged += static_cast<int64_t>(total);
  cached_total_.fetch_sub(total, std::memory_order_relaxed);
}

void ColrTree::RollWindowLocked(SlotId slot) {
  const int slid = scheme_.RollTo(slot);
  if (slid > 0) {
    ++maintenance_.rolls;
    maintenance_.slots_rolled += slid;
    ExpungeAfterRoll();
  }
}

void ColrTree::AdvanceTo(TimeMs now) {
  // The window covers [now - stale_margin, now + t_max]: newest slot
  // at now + t_max, the rest of the capacity keeping recent history.
  const SlotId needed = scheme_.SlotOf(now + t_max_ms_);
  // Lock-free fast path: the head only moves forward, so a stale read
  // at worst defers the roll to the next advance.
  if (needed <= scheme_.newest()) return;
  SyncTimedLock<EpochLatch> epoch_lock(epoch_latch_,
                                       SyncSite::kEpochExclusive);
  RollWindowLocked(needed);
}

void ColrTree::TouchCached(SensorId sensor) {
  if (sensor >= sensors_.size()) return;
  const int leaf = leaf_of_sensor_[sensor];
  if (leaf < 0) return;
  // Store mutations follow the writer protocol: shared epoch (so
  // rolls/expunges see a quiesced store) + the sensor's shard lock.
  SyncTimedSharedLock<EpochLatch> epoch_lock(epoch_latch_,
                                             SyncSite::kEpochShared);
  SyncTimedLock<SharedMutex> shard_lock(shard_mutex_.For(ShardOf(leaf)),
                                              SyncSite::kShardWriter);
  StoreForLeaf(leaf).Touch(sensor);
}

size_t ColrTree::CachedReadingCount() const {
  return cached_total_.load(std::memory_order_acquire);
}

ColrTree::MaintenanceCounters ColrTree::MaintenanceSnapshot() const {
  MaintenanceCounters snap = maintenance_;
  snap.sync = SyncStatsRegistry::Instance().Snapshot();
  return snap;
}

std::vector<ColrTree::ShardOccupancy> ColrTree::ShardOccupancies() const {
  std::vector<ShardOccupancy> out;
  out.reserve(stores_.size());
  // Shared epoch: expunges walk the stores without shard locks under
  // the exclusive side, so the stripe alone would not exclude them.
  SyncTimedSharedLock<EpochLatch> epoch_lock(epoch_latch_,
                                             SyncSite::kEpochShared);
  for (size_t s = 0; s < stores_.size(); ++s) {
    SyncTimedSharedLock<SharedMutex> shard_lock(
        shard_mutex_.For(shard_node_of_store_[s]), SyncSite::kShardWriter);
    out.push_back({shard_node_of_store_[s], stores_[s].size(),
                   stores_[s].OccupiedSlots()});
  }
  return out;
}

void ColrTree::InsertReading(const Reading& reading) {
  if (reading.sensor >= sensors_.size()) return;
  const SlotId slot = scheme_.SlotOf(reading.expiry);

  if (slot > scheme_.newest()) {
    // Roll trigger: the reading's expiry lies beyond the newest slot,
    // so the window must slide first. Rolls take the exclusive epoch
    // (no writer holds its shared side), keeping the expunge cascade
    // serialized exactly as before. Rare: at most one insert per slot
    // width pays this.
    SyncTimedLock<EpochLatch> epoch_lock(epoch_latch_,
                                         SyncSite::kEpochExclusive);
    RollWindowLocked(slot);
  }

  // Shared epoch: the window head is frozen for the rest of the
  // insert (rolls need the exclusive side), so every InWindow /
  // oldest() test below is stable.
  SyncTimedSharedLock<EpochLatch> epoch_lock(epoch_latch_,
                                             SyncSite::kEpochShared);
  if (slot < scheme_.oldest()) {
    // Late arrival: the reading's expiry slot slid out of the window
    // before this insert pinned the epoch (the roll above only moves
    // the window forward). Storing it would place a dead reading in
    // the store, and propagating it would re-tag ring positions that
    // in-window slots own. Drop it and count it.
    ++maintenance_.late_readings_dropped;
    return;
  }
  const int leaf = leaf_of_sensor_[reading.sensor];
  if (leaf < 0) return;

  {
    // All cache mutation below the root region happens under this
    // leaf's shard lock; inserts into other shards proceed in
    // parallel.
    SyncTimedLock<SharedMutex> shard_lock(
        shard_mutex_.For(ShardOf(leaf)), SyncSite::kShardWriter);

    // The shard's own store needs no further lock — this shard lock
    // serializes all its mutators. Its content may lead the aggregates
    // within this shard-locked region: recomputes read the
    // leaf-resident table, and eviction re-resolves its candidate
    // under this shard's lock.
    ReadingStore::InsertOutcome outcome =
        StoreForLeaf(leaf).InsertWithoutEviction(scheme_, reading);
    if (!outcome.replaced) {
      cached_total_.fetch_add(1, std::memory_order_release);
    }

    // Replacement: remove the old reading from the leaf table and the
    // aggregates *before* the new one lands in either, so that a
    // min/max recompute triggered by the removal never observes the
    // new value.
    if (outcome.replaced) {
      {
        SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(leaf),
                                                   SyncSite::kNodeStripe);
        leaf_tables_[static_cast<size_t>(leaf)].cached_readings.erase(
            reading.sensor);
      }
      const SlotId old_slot = scheme_.SlotOf(outcome.old_reading.expiry);
      if (scheme_.InWindow(old_slot)) {
        PropagateRemove(leaf, old_slot, outcome.old_reading.value);
      }
    }

    {
      SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(leaf),
                                                 SyncSite::kNodeStripe);
      LeafCacheTable& table = leaf_tables_[static_cast<size_t>(leaf)];
      table.cached_readings[reading.sensor] = reading;
      if (!outcome.replaced) {
        table.cached_sensors.push_back(reading.sensor);
      }
    }
    PropagateAdd(leaf, slot, reading.value);
  }

  // Capacity enforcement runs after our own shard lock is released:
  // the victim may live in any shard, and its removal must be done
  // under *that* shard's lock (one shard stripe at a time, so shard
  // acquisition can never deadlock).
  EnforceCacheCapacity(reading.sensor);
}

void ColrTree::EnforceCacheCapacity(SensorId protect) {
  const size_t capacity = options_.cache_capacity;
  if (capacity == 0) return;
  // Lock-free fast path. cached_total_ already reflects this thread's
  // own insert; if some concurrent insert pushes the cache over
  // capacity after this read, that writer's own enforcement pass sees
  // the overshoot — at quiescence the last mutation's count has been
  // observed by the thread that made it, so the constraint holds.
  while (cached_total_.load(std::memory_order_acquire) > capacity) {
    // Peek phase: the global least-recently-fetched entry in the
    // oldest occupied slot is the (slot, seq)-minimum over the
    // per-shard candidates, because every store stamps fetches from
    // the shared sequence. One shard stripe held at a time (shared),
    // so the scan cannot deadlock with writers or other evictors.
    std::optional<ReadingStore::EvictionCandidate> best;
    size_t best_store = 0;
    for (size_t s = 0; s < stores_.size(); ++s) {
      SyncTimedSharedLock<SharedMutex> peek_lock(
          shard_mutex_.For(shard_node_of_store_[s]), SyncSite::kShardWriter);
      std::optional<ReadingStore::EvictionCandidate> cand =
          stores_[s].PeekEvictionCandidateInfo(protect);
      if (cand && (!best || cand->slot < best->slot ||
                   (cand->slot == best->slot && cand->seq < best->seq))) {
        best = cand;
        best_store = s;
      }
    }
    if (!best) return;  // only `protect` remains cached
    // Evict under the victim's shard lock: the erase and the aggregate
    // undo must be atomic with respect to that shard's own writers,
    // whose slot recomputes read the leaf tables and would otherwise
    // observe the erase before the undo (double-removing the victim's
    // value). Re-resolve locally under the lock; checking *global*
    // minimality again would need other shards' locks (deadlock), and
    // local re-resolution suffices: if the shard still offers the same
    // sensor, erasing it keeps the cache moving toward capacity.
    SyncTimedLock<SharedMutex> shard_lock(
        shard_mutex_.For(shard_node_of_store_[best_store]),
                         SyncSite::kShardWriter);
    if (cached_total_.load(std::memory_order_acquire) <= capacity) return;
    std::optional<ReadingStore::EvictionCandidate> cand =
        stores_[best_store].PeekEvictionCandidateInfo(protect);
    if (!cand || cand->reading.sensor != best->reading.sensor) {
      continue;  // the shard moved on since the peek; rescan
    }
    const Reading victim = cand->reading;
    stores_[best_store].Erase(victim.sensor);
    cached_total_.fetch_sub(1, std::memory_order_release);
    ++maintenance_.readings_evicted;
    RemoveFromLeafCachedSet(victim.sensor);
    const int vleaf = leaf_of_sensor_[victim.sensor];
    const SlotId vslot = scheme_.SlotOf(victim.expiry);
    if (vleaf >= 0 && scheme_.InWindow(vslot)) {
      PropagateRemove(vleaf, vslot, victim.value);
    }
  }
}

void ColrTree::PropagateAdd(int leaf_id, SlotId slot, double value) {
  int n = leaf_id;
  for (; n >= 0 && arena_.record(n).level > shard_level_;
       n = arena_.record(n).parent) {
    SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(n),
                                               SyncSite::kNodeStripe);
    caches_[static_cast<size_t>(n)].Add(scheme_, slot, value);
  }
  // Root region: the shard node and its ancestors are shared by every
  // shard, so this short tail (at most shard_level_ + 1 ring updates)
  // merges under root_mutex_.
  SyncTimedLock<SpinMutex> root_lock(root_mutex_, SyncSite::kRootSpin);
  for (; n >= 0; n = arena_.record(n).parent) {
    SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(n),
                                               SyncSite::kNodeStripe);
    caches_[static_cast<size_t>(n)].Add(scheme_, slot, value);
  }
}

Aggregate ColrTree::LeafSlotAggregate(int leaf_id, SlotId slot) const {
  // Reads the leaf-resident table, not the store: the gather runs
  // entirely under this leaf's stripe (whose mutators all hold the
  // caller's shard lock), keeping the recompute cascade off the
  // global store lock. Iterate in cached_sensors order so the
  // floating-point accumulation order matches the sequential build.
  Aggregate agg;
  SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(leaf_id),
                                                   SyncSite::kNodeStripe);
  const LeafCacheTable& table = leaf_tables_[static_cast<size_t>(leaf_id)];
  for (SensorId sid : table.cached_sensors) {
    auto it = table.cached_readings.find(sid);
    if (it != table.cached_readings.end() &&
        scheme_.SlotOf(it->second.expiry) == slot) {
      agg.Add(it->second.value);
    }
  }
  return agg;
}

void ColrTree::RecomputeSlotFromChildren(int node_id, SlotId slot) {
  ++maintenance_.slot_recomputes;
  const Node& n = arena_.record(node_id);
  AggregateSlotCache& own_cache = caches_[static_cast<size_t>(node_id)];
  // The caller's lock domain already makes the child snapshot stable:
  // below the shard node every mutator of the children holds this
  // shard's lock; at and above it, root_mutex_. The version-tag
  // validation is defense in depth — if any interleaving slips a
  // concurrent mutation of this slot between the snapshot and the
  // overwrite, the Set is abandoned and the gather retried instead of
  // silently losing that writer's delta.
  for (;;) {
    uint64_t version;
    {
      SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                       SyncSite::kNodeStripe);
      version = own_cache.SlotVersion(scheme_, slot);
    }
    Aggregate agg;
    if (n.IsLeaf()) {
      agg = LeafSlotAggregate(node_id, slot);
    } else {
      // The child block is a contiguous run of arena ids, so this
      // gather is a strided scan over consecutive AggregateSlotCache
      // objects in caches_ — no pointer chasing between children.
      const int child_end = n.child_begin + n.child_count;
      for (int c = n.child_begin; c < child_end; ++c) {
        SyncTimedSharedLock<SharedMutex> child_lock(
            node_mutex_.For(c), SyncSite::kNodeStripe);
        agg.Merge(caches_[static_cast<size_t>(c)].Get(scheme_, slot));
      }
    }
    {
      SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                 SyncSite::kNodeStripe);
      if (own_cache.SlotVersion(scheme_, slot) == version) {
        own_cache.Set(scheme_, slot, agg);
        return;
      }
    }
    ++maintenance_.slot_recompute_retries;
  }
}

void ColrTree::RemoveSlotValueAt(int node_id, SlotId slot, double value) {
  bool invertible;
  {
    SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                         SyncSite::kNodeStripe);
    invertible =
        caches_[static_cast<size_t>(node_id)].Remove(scheme_, slot, value);
  }
  if (!invertible) {
    // The removal hit the slot's min/max: the decrement is not
    // invertible (§IV-B), recompute the slot bottom-up from children
    // (the slot-update trigger cascade).
    RecomputeSlotFromChildren(node_id, slot);
  }
}

void ColrTree::PropagateRemove(int leaf_id, SlotId slot, double value) {
  int n = leaf_id;
  for (; n >= 0 && arena_.record(n).level > shard_level_;
       n = arena_.record(n).parent) {
    RemoveSlotValueAt(n, slot, value);
  }
  // Root region: same split as PropagateAdd. Holding root_mutex_ here
  // is also what makes the recompute sound — the children of any
  // root-region node are themselves mutated only under root_mutex_
  // (or, for the shard node's children, under this shard's lock,
  // which the caller already holds).
  SyncTimedLock<SpinMutex> root_lock(root_mutex_, SyncSite::kRootSpin);
  for (; n >= 0; n = arena_.record(n).parent) {
    RemoveSlotValueAt(n, slot, value);
  }
}

void ColrTree::RemoveFromLeafCachedSet(SensorId sensor) {
  const int leaf = leaf_of_sensor_[sensor];
  if (leaf < 0) return;
  SyncTimedLock<SharedMutex> node_lock(node_mutex_.For(leaf),
                                             SyncSite::kNodeStripe);
  LeafCacheTable& table = leaf_tables_[static_cast<size_t>(leaf)];
  table.cached_readings.erase(sensor);
  auto& set = table.cached_sensors;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i] == sensor) {
      set[i] = set.back();
      set.pop_back();
      return;
    }
  }
}

SlotId ColrTree::QuerySlot(TimeMs now, TimeMs staleness_ms) const {
  // The paper's lookup rule (§IV-A): hash the freshness bound
  // timestamp; slots strictly younger hold readings whose expiry lies
  // beyond the bound, i.e., readings that were still valid within the
  // user's staleness window.
  return scheme_.SlotOf(now - staleness_ms);
}

ColrTree::CacheLookup ColrTree::LookupCache(int node_id, TimeMs now,
                                            TimeMs staleness_ms,
                                            const Rect* region_filter,
                                            FreshnessRule rule) const {
  const Node& n = arena_.record(node_id);
  CacheLookup out;
  if (n.IsLeaf()) {
    // Per-entry inspection: usable iff the reading was still valid
    // within the staleness window (expiry beyond the freshness
    // bound), either exactly (including entries in the query slot,
    // §IV-B leaf refinement) or slot-aligned.
    const SlotId qslot = QuerySlot(now, staleness_ms);
    SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                     SyncSite::kNodeStripe);
    const LeafCacheTable& table = leaf_tables_[static_cast<size_t>(node_id)];
    for (SensorId sid : table.cached_sensors) {
      auto it = table.cached_readings.find(sid);
      if (it == table.cached_readings.end()) continue;
      const Reading& r = it->second;
      if (rule == FreshnessRule::kExact) {
        if (!r.ValidAt(now - staleness_ms)) continue;
      } else {
        const SlotId slot = scheme_.SlotOf(r.expiry);
        if (slot <= qslot || !scheme_.InWindow(slot)) continue;
      }
      if (region_filter != nullptr &&
          !region_filter->Contains(sensors_[sid].location)) {
        continue;
      }
      out.agg.Add(r.value);
      out.used_sensors.push_back(sid);
      out.used_readings.push_back(r);
    }
    return out;
  }
  const SlotId qslot = QuerySlot(now, staleness_ms);
  SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                   SyncSite::kNodeStripe);
  out.agg = caches_[static_cast<size_t>(node_id)].QueryNewerThan(
      scheme_, qslot, &out.slots_merged);
  return out;
}

int64_t ColrTree::CachedCount(int node_id, TimeMs now,
                              TimeMs staleness_ms) const {
  const Node& n = arena_.record(node_id);
  if (n.IsLeaf()) {
    int64_t c = 0;
    SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                     SyncSite::kNodeStripe);
    const LeafCacheTable& table = leaf_tables_[static_cast<size_t>(node_id)];
    for (SensorId sid : table.cached_sensors) {
      auto it = table.cached_readings.find(sid);
      if (it != table.cached_readings.end() &&
          it->second.ValidAt(now - staleness_ms)) {
        ++c;
      }
    }
    return c;
  }
  SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(node_id),
                                                   SyncSite::kNodeStripe);
  return caches_[static_cast<size_t>(node_id)].WeightNewerThan(
      scheme_, QuerySlot(now, staleness_ms));
}

std::optional<Reading> ColrTree::CachedReading(SensorId sensor) const {
  if (sensor >= sensors_.size()) return std::nullopt;
  const int leaf = leaf_of_sensor_[sensor];
  if (leaf < 0) return std::nullopt;
  SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(leaf),
                                                   SyncSite::kNodeStripe);
  const auto& readings =
      leaf_tables_[static_cast<size_t>(leaf)].cached_readings;
  auto it = readings.find(sensor);
  if (it == readings.end()) return std::nullopt;
  return it->second;
}

bool ColrTree::CachedInNewerSlot(SensorId sensor, SlotId query_slot) const {
  if (sensor >= sensors_.size()) return false;
  const int leaf = leaf_of_sensor_[sensor];
  if (leaf < 0) return false;
  SyncTimedSharedLock<SharedMutex> node_lock(node_mutex_.For(leaf),
                                                   SyncSite::kNodeStripe);
  const auto& readings =
      leaf_tables_[static_cast<size_t>(leaf)].cached_readings;
  auto it = readings.find(sensor);
  if (it == readings.end()) return false;
  const SlotId slot = scheme_.SlotOf(it->second.expiry);
  return slot > query_slot && scheme_.InWindow(slot);
}

const Reading* ColrTree::StoredReadingLocked(SensorId sid) const {
  const int leaf = leaf_of_sensor_[sid];
  return leaf < 0 ? nullptr : StoreForLeaf(leaf).Get(sid);
}

Status ColrTree::CheckCacheConsistency() const {
  // For every node and every in-window slot, the cached aggregate must
  // equal the aggregate recomputed from raw cached readings under the
  // node. The exclusive epoch drains every in-flight writer (they all
  // hold the shared side), so the snapshot is coherent.
  SyncTimedLock<EpochLatch> epoch_lock(epoch_latch_,
                                       SyncSite::kEpochExclusive);
  // The leaf-resident reading tables must mirror the stores exactly:
  // same membership (via cached_sensors) and same reading per sensor.
  size_t leaf_total = 0;
  for (size_t id = 0; id < arena_.size(); ++id) {
    if (!arena_.record(static_cast<int>(id)).IsLeaf()) continue;
    const LeafCacheTable& table = leaf_tables_[id];
    if (table.cached_readings.size() != table.cached_sensors.size()) {
      return Status::Internal(
          "leaf reading table size diverges from cached-sensor set at "
          "leaf " +
          std::to_string(id));
    }
    leaf_total += table.cached_readings.size();
    for (SensorId sid : table.cached_sensors) {
      auto it = table.cached_readings.find(sid);
      const Reading* r = StoredReadingLocked(sid);
      if (it == table.cached_readings.end() || r == nullptr ||
          r->value != it->second.value || r->expiry != it->second.expiry) {
        return Status::Internal(
            "leaf reading table diverges from store at leaf " +
            std::to_string(id) + " sensor " + std::to_string(sid));
      }
    }
  }
  size_t store_total = 0;
  for (const ReadingStore& store : stores_) store_total += store.size();
  if (leaf_total != store_total ||
      store_total != cached_total_.load(std::memory_order_acquire)) {
    return Status::Internal(
        "store totals diverge from leaf tables or the cached count");
  }
  for (size_t id = 0; id < arena_.size(); ++id) {
    const Node& n = arena_.record(static_cast<int>(id));
    for (SlotId s = scheme_.oldest(); s <= scheme_.newest(); ++s) {
      Aggregate expected;
      for (int j = n.item_begin; j < n.item_end; ++j) {
        const Reading* r = StoredReadingLocked(sensor_order_[j]);
        if (r != nullptr && scheme_.SlotOf(r->expiry) == s) {
          expected.Add(r->value);
        }
      }
      const Aggregate& actual = caches_[id].Get(scheme_, s);
      if (expected.count != actual.count ||
          std::abs(expected.sum - actual.sum) > 1e-6 ||
          (expected.count > 0 &&
           (expected.min != actual.min || expected.max != actual.max))) {
        return Status::Internal("slot aggregate inconsistent at node " +
                                std::to_string(id) + " slot " +
                                std::to_string(s));
      }
    }
  }
  return Status::OK();
}

}  // namespace colr
