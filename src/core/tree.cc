#include "core/tree.h"

#include <algorithm>
#include <cmath>

namespace colr {

namespace {

TimeMs ResolveTmax(const ColrTree::Options& options,
                   const std::vector<SensorInfo>& sensors) {
  TimeMs t_max = options.t_max_ms;
  if (t_max <= 0) {
    for (const SensorInfo& s : sensors) {
      t_max = std::max(t_max, s.expiry_ms);
    }
    if (t_max <= 0) t_max = kMsPerMinute;
  }
  return t_max;
}

SlotScheme MakeScheme(const ColrTree::Options& options, TimeMs t_max) {
  TimeMs delta = options.slot_delta_ms;
  if (delta <= 0) delta = std::max<TimeMs>(1, t_max / 4);
  const TimeMs margin =
      options.stale_margin_ms >= 0 ? options.stale_margin_ms : t_max;
  return SlotScheme(delta, t_max + margin);
}

}  // namespace

ColrTree::ColrTree(std::vector<SensorInfo> sensors, Options options)
    : options_(options),
      sensors_(std::move(sensors)),
      t_max_ms_(ResolveTmax(options, sensors_)),
      scheme_(MakeScheme(options, t_max_ms_)),
      store_(options.cache_capacity) {
  std::vector<Point> points;
  points.reserve(sensors_.size());
  for (const SensorInfo& s : sensors_) points.push_back(s.location);

  ClusterTree ct = BuildClusterTree(points, options_.cluster);
  root_ = ct.root;
  height_ = ct.height;
  sensor_order_.reserve(ct.item_order.size());
  for (int idx : ct.item_order) {
    sensor_order_.push_back(static_cast<SensorId>(idx));
  }

  nodes_.resize(ct.nodes.size());
  leaf_of_sensor_.assign(sensors_.size(), -1);
  for (size_t i = 0; i < ct.nodes.size(); ++i) {
    const ClusterTree::Node& cn = ct.nodes[i];
    Node& n = nodes_[i];
    n.bbox = cn.bbox;
    n.centroid = cn.centroid;
    n.level = cn.level;
    n.parent = cn.parent;
    n.children = cn.children;
    n.item_begin = cn.item_begin;
    n.item_end = cn.item_end;
    n.cache.Resize(scheme_.num_slots());

    double avail_sum = 0.0;
    for (int j = cn.item_begin; j < cn.item_end; ++j) {
      const SensorInfo& s = sensors_[sensor_order_[j]];
      avail_sum += s.availability;
      n.max_expiry_ms = std::max(n.max_expiry_ms, s.expiry_ms);
    }
    n.mean_availability =
        cn.Weight() > 0 ? avail_sum / cn.Weight() : 1.0;

    if (cn.IsLeaf()) {
      for (int j = cn.item_begin; j < cn.item_end; ++j) {
        leaf_of_sensor_[sensor_order_[j]] = static_cast<int>(i);
      }
    }
  }
}

int ColrTree::CountSensorsInRegion(const Rect& region) const {
  if (root_ < 0) return 0;
  int count = 0;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (!n.bbox.Intersects(region)) continue;
    if (region.Contains(n.bbox)) {
      count += n.Weight();
      continue;
    }
    if (n.IsLeaf()) {
      for (int j = n.item_begin; j < n.item_end; ++j) {
        if (region.Contains(sensors_[sensor_order_[j]].location)) ++count;
      }
    } else {
      for (int c : n.children) stack.push_back(c);
    }
  }
  return count;
}

int ColrTree::LevelForClusterDistance(double distance) const {
  if (height_ <= 1) return 0;
  // Mean bbox diagonal per level, coarse to fine.
  std::vector<double> sum(height_, 0.0);
  std::vector<int> count(height_, 0);
  for (const Node& n : nodes_) {
    const double dx = n.bbox.Width();
    const double dy = n.bbox.Height();
    sum[n.level] += std::sqrt(dx * dx + dy * dy);
    ++count[n.level];
  }
  for (int level = 0; level < height_; ++level) {
    if (count[level] == 0) continue;
    if (sum[level] / count[level] <= distance) return level;
  }
  return height_ - 1;
}

void ColrTree::RefreshAvailability(const std::vector<double>& estimates) {
  for (Node& n : nodes_) {
    double total = 0.0;
    for (int j = n.item_begin; j < n.item_end; ++j) {
      const SensorId sid = sensor_order_[j];
      total += sid < estimates.size() ? estimates[sid]
                                      : sensors_[sid].availability;
    }
    n.mean_availability = n.Weight() > 0 ? total / n.Weight() : 1.0;
  }
}

std::vector<SensorId> ColrTree::SensorsUnderInRegion(
    int node_id, const Rect& region) const {
  const Node& n = nodes_[node_id];
  std::vector<SensorId> out;
  out.reserve(n.Weight());
  const bool full = region.Contains(n.bbox);
  for (int j = n.item_begin; j < n.item_end; ++j) {
    const SensorId sid = sensor_order_[j];
    if (full || region.Contains(sensors_[sid].location)) {
      out.push_back(sid);
    }
  }
  return out;
}

void ColrTree::ExpungeAfterRoll() {
  std::vector<Reading> expunged;
  {
    std::unique_lock<std::shared_mutex> store_lock(store_mutex_);
    expunged = store_.ExpungeExpiredSlots(scheme_);
    // No aggregate propagation: the expunged slots are outside the
    // window, so their ring positions lazily reset on reuse.
  }
  maintenance_.readings_expunged += static_cast<int64_t>(expunged.size());
  for (const Reading& r : expunged) RemoveFromLeafCachedSet(r.sensor);
}

void ColrTree::AdvanceTo(TimeMs now) {
  // The window covers [now - stale_margin, now + t_max]: newest slot
  // at now + t_max, the rest of the capacity keeping recent history.
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  const SlotId needed = scheme_.SlotOf(now + t_max_ms_);
  const int slid = scheme_.RollTo(needed);
  if (slid > 0) {
    ++maintenance_.rolls;
    maintenance_.slots_rolled += slid;
    ExpungeAfterRoll();
  }
}

void ColrTree::TouchCached(SensorId sensor) {
  std::unique_lock<std::shared_mutex> store_lock(store_mutex_);
  store_.Touch(sensor);
}

size_t ColrTree::CachedReadingCount() const {
  std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
  return store_.size();
}

void ColrTree::InsertReading(const Reading& reading) {
  if (reading.sensor >= sensors_.size()) return;
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  const SlotId slot = scheme_.SlotOf(reading.expiry);
  const int slid = scheme_.RollTo(slot);
  if (slid > 0) {
    ++maintenance_.rolls;
    maintenance_.slots_rolled += slid;
    ExpungeAfterRoll();
  }
  if (slot < scheme_.oldest()) {
    // Late arrival: the reading's expiry slot slid out of the window
    // before this insert acquired the write mutex (RollTo above was a
    // no-op — the window only moves forward). Storing it would place a
    // dead reading in the store, and propagating it would re-tag ring
    // positions that in-window slots own. Drop it and count it.
    ++maintenance_.late_readings_dropped;
    return;
  }
  const int leaf = leaf_of_sensor_[reading.sensor];
  if (leaf < 0) return;

  // Replacement: remove the old reading from both the store and the
  // aggregates *before* inserting the new one, so that a min/max
  // recompute triggered by the removal never observes the new value.
  bool had_old = false;
  Reading old_copy;
  {
    std::unique_lock<std::shared_mutex> store_lock(store_mutex_);
    if (const Reading* old = store_.Get(reading.sensor); old != nullptr) {
      old_copy = *old;
      had_old = true;
      store_.Erase(reading.sensor);
    }
  }
  if (had_old) {
    const SlotId old_slot = scheme_.SlotOf(old_copy.expiry);
    if (scheme_.InWindow(old_slot)) {
      PropagateRemove(leaf, old_slot, old_copy.value);
    }
  }

  ReadingStore::InsertOutcome outcome;
  {
    std::unique_lock<std::shared_mutex> store_lock(store_mutex_);
    outcome = store_.Insert(scheme_, reading);
  }
  if (!had_old) {
    std::unique_lock<std::shared_mutex> node_lock(node_mutex_.For(leaf));
    nodes_[leaf].cached_sensors.push_back(reading.sensor);
  }
  PropagateAdd(leaf, slot, reading.value);

  maintenance_.readings_evicted +=
      static_cast<int64_t>(outcome.evicted.size());
  for (const Reading& victim : outcome.evicted) {
    const int vleaf = leaf_of_sensor_[victim.sensor];
    RemoveFromLeafCachedSet(victim.sensor);
    const SlotId vslot = scheme_.SlotOf(victim.expiry);
    if (vleaf >= 0 && scheme_.InWindow(vslot)) {
      PropagateRemove(vleaf, vslot, victim.value);
    }
  }
}

void ColrTree::PropagateAdd(int leaf_id, SlotId slot, double value) {
  for (int n = leaf_id; n >= 0; n = nodes_[n].parent) {
    std::unique_lock<std::shared_mutex> node_lock(node_mutex_.For(n));
    nodes_[n].cache.Add(scheme_, slot, value);
  }
}

Aggregate ColrTree::LeafSlotAggregate(int leaf_id, SlotId slot) const {
  Aggregate agg;
  std::shared_lock<std::shared_mutex> node_lock(node_mutex_.For(leaf_id));
  std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
  for (SensorId sid : nodes_[leaf_id].cached_sensors) {
    const Reading* r = store_.Get(sid);
    if (r != nullptr && scheme_.SlotOf(r->expiry) == slot) {
      agg.Add(r->value);
    }
  }
  return agg;
}

void ColrTree::RecomputeSlotFromChildren(int node_id, SlotId slot) {
  ++maintenance_.slot_recomputes;
  const Node& n = nodes_[node_id];
  Aggregate agg;
  if (n.IsLeaf()) {
    agg = LeafSlotAggregate(node_id, slot);
  } else {
    for (int c : n.children) {
      std::shared_lock<std::shared_mutex> child_lock(node_mutex_.For(c));
      agg.Merge(nodes_[c].cache.Get(scheme_, slot));
    }
  }
  std::unique_lock<std::shared_mutex> node_lock(node_mutex_.For(node_id));
  nodes_[node_id].cache.Set(scheme_, slot, agg);
}

void ColrTree::PropagateRemove(int leaf_id, SlotId slot, double value) {
  for (int n = leaf_id; n >= 0; n = nodes_[n].parent) {
    bool invertible;
    {
      std::unique_lock<std::shared_mutex> node_lock(node_mutex_.For(n));
      invertible = nodes_[n].cache.Remove(scheme_, slot, value);
    }
    if (!invertible) {
      // The removal hit the slot's min/max: the decrement is not
      // invertible (§IV-B), recompute the slot bottom-up from children
      // (the slot-update trigger cascade).
      RecomputeSlotFromChildren(n, slot);
    }
  }
}

void ColrTree::RemoveFromLeafCachedSet(SensorId sensor) {
  const int leaf = leaf_of_sensor_[sensor];
  if (leaf < 0) return;
  std::unique_lock<std::shared_mutex> node_lock(node_mutex_.For(leaf));
  auto& set = nodes_[leaf].cached_sensors;
  for (size_t i = 0; i < set.size(); ++i) {
    if (set[i] == sensor) {
      set[i] = set.back();
      set.pop_back();
      return;
    }
  }
}

SlotId ColrTree::QuerySlot(const Node& node, TimeMs now,
                           TimeMs staleness_ms) const {
  // The paper's lookup rule (§IV-A): hash the freshness bound
  // timestamp; slots strictly younger hold readings whose expiry lies
  // beyond the bound, i.e., readings that were still valid within the
  // user's staleness window.
  (void)node;
  return scheme_.SlotOf(now - staleness_ms);
}

ColrTree::CacheLookup ColrTree::LookupCache(int node_id, TimeMs now,
                                            TimeMs staleness_ms,
                                            const Rect* region_filter,
                                            FreshnessRule rule) const {
  const Node& n = nodes_[node_id];
  CacheLookup out;
  if (n.IsLeaf()) {
    // Per-entry inspection: usable iff the reading was still valid
    // within the staleness window (expiry beyond the freshness
    // bound), either exactly (including entries in the query slot,
    // §IV-B leaf refinement) or slot-aligned.
    const SlotId qslot = QuerySlot(n, now, staleness_ms);
    std::shared_lock<std::shared_mutex> node_lock(node_mutex_.For(node_id));
    std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
    for (SensorId sid : n.cached_sensors) {
      const Reading* r = store_.Get(sid);
      if (r == nullptr) continue;
      if (rule == FreshnessRule::kExact) {
        if (!r->ValidAt(now - staleness_ms)) continue;
      } else {
        const SlotId slot = scheme_.SlotOf(r->expiry);
        if (slot <= qslot || !scheme_.InWindow(slot)) continue;
      }
      if (region_filter != nullptr &&
          !region_filter->Contains(sensors_[sid].location)) {
        continue;
      }
      out.agg.Add(r->value);
      out.used_sensors.push_back(sid);
      out.used_readings.push_back(*r);
    }
    return out;
  }
  const SlotId qslot = QuerySlot(n, now, staleness_ms);
  std::shared_lock<std::shared_mutex> node_lock(node_mutex_.For(node_id));
  out.agg = n.cache.QueryNewerThan(scheme_, qslot, &out.slots_merged);
  return out;
}

int64_t ColrTree::CachedCount(int node_id, TimeMs now,
                              TimeMs staleness_ms) const {
  const Node& n = nodes_[node_id];
  if (n.IsLeaf()) {
    int64_t c = 0;
    std::shared_lock<std::shared_mutex> node_lock(node_mutex_.For(node_id));
    std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
    for (SensorId sid : n.cached_sensors) {
      const Reading* r = store_.Get(sid);
      if (r != nullptr && r->ValidAt(now - staleness_ms)) {
        ++c;
      }
    }
    return c;
  }
  std::shared_lock<std::shared_mutex> node_lock(node_mutex_.For(node_id));
  return n.cache.WeightNewerThan(scheme_, QuerySlot(n, now, staleness_ms));
}

std::optional<Reading> ColrTree::CachedReading(SensorId sensor) const {
  std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
  const Reading* r = store_.Get(sensor);
  if (r == nullptr) return std::nullopt;
  return *r;
}

bool ColrTree::CachedInNewerSlot(SensorId sensor, SlotId query_slot) const {
  std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
  const Reading* r = store_.Get(sensor);
  if (r == nullptr) return false;
  const SlotId slot = scheme_.SlotOf(r->expiry);
  return slot > query_slot && scheme_.InWindow(slot);
}

Status ColrTree::CheckCacheConsistency() const {
  // For every node and every in-window slot, the cached aggregate must
  // equal the aggregate recomputed from raw cached readings under the
  // node. Serialized against writers so the snapshot is coherent.
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  std::shared_lock<std::shared_mutex> store_lock(store_mutex_);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    for (SlotId s = scheme_.oldest(); s <= scheme_.newest(); ++s) {
      Aggregate expected;
      for (int j = n.item_begin; j < n.item_end; ++j) {
        const Reading* r = store_.Get(sensor_order_[j]);
        if (r != nullptr && scheme_.SlotOf(r->expiry) == s) {
          expected.Add(r->value);
        }
      }
      const Aggregate& actual = n.cache.Get(scheme_, s);
      if (expected.count != actual.count ||
          std::abs(expected.sum - actual.sum) > 1e-6 ||
          (expected.count > 0 &&
           (expected.min != actual.min || expected.max != actual.max))) {
        return Status::Internal("slot aggregate inconsistent at node " +
                                std::to_string(id) + " slot " +
                                std::to_string(s));
      }
    }
  }
  return Status::OK();
}

}  // namespace colr
