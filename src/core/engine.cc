#include "core/engine.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace colr {

void QueryStats::MergeCounters(const QueryStats& other) {
  nodes_traversed += other.nodes_traversed;
  internal_nodes_traversed += other.internal_nodes_traversed;
  cached_nodes_accessed += other.cached_nodes_accessed;
  sensors_probed += other.sensors_probed;
  probe_successes += other.probe_successes;
  cache_readings_used += other.cache_readings_used;
  cached_agg_readings += other.cached_agg_readings;
  slots_merged += other.slots_merged;
  probes_coalesced += other.probes_coalesced;
  probes_reused += other.probes_reused;
  probes_shed += other.probes_shed;
  processing_ms += other.processing_ms;
  processing_skew_ms += other.processing_skew_ms;
  collection_latency_ms += other.collection_latency_ms;
  result_size += other.result_size;
}

const char* ColrEngine::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kRTree: return "rtree";
    case Mode::kFlatCache: return "flat-cache";
    case Mode::kHierCache: return "hier-cache";
    case Mode::kColr: return "colr-tree";
  }
  return "unknown";
}

namespace {

// Adds a reading value to a group's histogram per the query's bucket
// configuration (§I: per-group value distributions).
void AddToHistogram(const Query& query, double value, GroupResult* group) {
  if (query.histogram_buckets <= 0) return;
  if (group->histogram.empty()) {
    group->histogram.assign(query.histogram_buckets, 0);
  }
  const double lo = query.histogram_lo;
  const double hi = query.histogram_hi;
  int bucket = 0;
  if (hi > lo) {
    bucket = static_cast<int>((value - lo) / (hi - lo) *
                              query.histogram_buckets);
  }
  bucket = std::clamp(bucket, 0, query.histogram_buckets - 1);
  ++group->histogram[bucket];
}

}  // namespace

ColrEngine::ColrEngine(ColrTree* tree, SensorNetwork* network,
                       Options options)
    : tree_(tree),
      network_(network),
      scheduler_(std::make_unique<ProbeScheduler>(network, options.probe)),
      clock_(network->clock()),
      options_(options),
      rng_(options.seed) {
  if (options_.mode == Mode::kFlatCache) {
    flat_ = std::make_unique<FlatCache>(
        &network_->sensors(), tree_->scheme().delta(),
        tree_->scheme().delta() * (tree_->scheme().num_slots() - 1),
        tree_->options().cache_capacity);
  }
  if (options_.track_availability) {
    tracker_ = std::make_unique<AvailabilityTracker>(network_->sensors());
    last_availability_refresh_ms_.store(clock_->NowMs(),
                                        std::memory_order_relaxed);
  }
}

std::vector<Reading> ColrEngine::ProbeBatch(const std::vector<SensorId>& ids,
                                            ProbeAccounting* acct) {
  Stopwatch watch;
  ProbeScheduler::BatchOutcome batch = scheduler_->ProbeBatch(ids);
  acct->sim_wall_ms += watch.ElapsedMillis();
  acct->requested += static_cast<int64_t>(batch.requested);
  acct->attempted += static_cast<int64_t>(batch.issued_ids.size());
  acct->succeeded += static_cast<int64_t>(batch.readings.size());
  acct->coalesced += static_cast<int64_t>(batch.coalesced);
  acct->reused += static_cast<int64_t>(batch.reused);
  acct->shed += static_cast<int64_t>(batch.shed);
  acct->total_latency_ms += batch.latency_ms;
  acct->max_batch_latency_ms =
      std::max(acct->max_batch_latency_ms, batch.latency_ms);
  if (tracker_ != nullptr) {
    // Availability evidence covers exactly the probes *this query*
    // issued (coalesced/reused requests were someone else's probe —
    // recording them again would double-weight the EWMA). Successes
    // are identified by the issued readings; everything else issued
    // failed. Count successes per sensor so a duplicated id records
    // one outcome per occurrence (a positional first-match scan would
    // mark every repeat a spurious failure and bias the EWMA low).
    std::unordered_map<SensorId, int> successes;
    for (const Reading& r : batch.issued_readings) ++successes[r.sensor];
    for (SensorId id : batch.issued_ids) {
      auto it = successes.find(id);
      const bool ok = it != successes.end() && it->second > 0;
      if (ok) --it->second;
      tracker_->Record(id, ok);
    }
  }
  return std::move(batch.readings);
}

void ColrEngine::FinishProbeStats(const ProbeAccounting& acct,
                                  double elapsed_ms, QueryStats* stats) {
  stats->sensors_probed = acct.attempted;
  stats->probe_successes = acct.succeeded;
  stats->probes_coalesced = acct.coalesced;
  stats->probes_reused = acct.reused;
  stats->probes_shed = acct.shed;
  stats->collection_latency_ms = acct.total_latency_ms;
  const double processing = elapsed_ms - acct.sim_wall_ms;
  // elapsed covers every interval sim_wall accumulated, so a negative
  // difference means the network wall-time accounting double-counted.
  // Surface the skew (tests assert it stays zero) instead of silently
  // clamping it away.
  if (processing < 0.0) stats->processing_skew_ms = -processing;
  stats->processing_ms = std::max(0.0, processing);
}

QueryResult ColrEngine::Execute(const Query& query) {
  ExecutionContext ctx(&rng_);
  return Execute(query, ctx);
}

QueryResult ColrEngine::Execute(const Query& query, ExecutionContext& ctx) {
  const TimeMs now = clock_->NowMs();
  QueryResult result;
  switch (options_.mode) {
    case Mode::kColr:
      result = query.sample_size > 0 ? ExecuteColr(query, now, ctx.rng())
                                     : ExecuteRange(query, now, true);
      break;
    case Mode::kHierCache:
      result = ExecuteRange(query, now, true);
      break;
    case Mode::kRTree:
      result = ExecuteRange(query, now, false);
      break;
    case Mode::kFlatCache:
      result = ExecuteFlat(query, now);
      break;
  }
  FinishQuery(query, now, &result);
  return result;
}

QueryStats ColrEngine::cumulative() const {
  QueryStats s;
  s.nodes_traversed = cumulative_.nodes_traversed.load();
  s.internal_nodes_traversed = cumulative_.internal_nodes_traversed.load();
  s.cached_nodes_accessed = cumulative_.cached_nodes_accessed.load();
  s.sensors_probed = cumulative_.sensors_probed.load();
  s.probe_successes = cumulative_.probe_successes.load();
  s.cache_readings_used = cumulative_.cache_readings_used.load();
  s.cached_agg_readings = cumulative_.cached_agg_readings.load();
  s.slots_merged = cumulative_.slots_merged.load();
  s.probes_coalesced = cumulative_.probes_coalesced.load();
  s.probes_reused = cumulative_.probes_reused.load();
  s.probes_shed = cumulative_.probes_shed.load();
  s.processing_ms = cumulative_.processing_ms.load();
  s.processing_skew_ms = cumulative_.processing_skew_ms.load();
  s.collection_latency_ms = cumulative_.collection_latency_ms.load();
  s.result_size = cumulative_.result_size.load();
  return s;
}

void ColrEngine::ResetCumulative() {
  cumulative_.nodes_traversed.store(0);
  cumulative_.internal_nodes_traversed.store(0);
  cumulative_.cached_nodes_accessed.store(0);
  cumulative_.sensors_probed.store(0);
  cumulative_.probe_successes.store(0);
  cumulative_.cache_readings_used.store(0);
  cumulative_.cached_agg_readings.store(0);
  cumulative_.slots_merged.store(0);
  cumulative_.probes_coalesced.store(0);
  cumulative_.probes_reused.store(0);
  cumulative_.probes_shed.store(0);
  cumulative_.processing_ms.store(0.0);
  cumulative_.processing_skew_ms.store(0.0);
  cumulative_.collection_latency_ms.store(0);
  cumulative_.result_size.store(0);
}

void ColrEngine::FinishQuery(const Query& query, TimeMs now,
                             QueryResult* result) {
  if (options_.fill_region_count) {
    result->stats.region_sensor_count =
        tree_->CountSensorsInRegion(query.region.bbox);
  }
  if (tracker_ != nullptr) {
    // Clock-driven refresh: when a full interval has elapsed on the
    // engine's clock, the CAS elects this query to push the tracker's
    // estimates into the tree. Concurrent finishers that lose the CAS
    // skip — one refresh per due interval, regardless of query rate.
    const TimeMs interval = std::max<TimeMs>(1, options_.availability_refresh_ms);
    TimeMs last = last_availability_refresh_ms_.load(std::memory_order_relaxed);
    if (now - last >= interval &&
        last_availability_refresh_ms_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      tree_->RefreshAvailability(tracker_->estimates());
    }
  }
  const QueryStats& s = result->stats;
  cumulative_.nodes_traversed += s.nodes_traversed;
  cumulative_.internal_nodes_traversed += s.internal_nodes_traversed;
  cumulative_.cached_nodes_accessed += s.cached_nodes_accessed;
  cumulative_.sensors_probed += s.sensors_probed;
  cumulative_.probe_successes += s.probe_successes;
  cumulative_.cache_readings_used += s.cache_readings_used;
  cumulative_.cached_agg_readings += s.cached_agg_readings;
  cumulative_.slots_merged += s.slots_merged;
  cumulative_.probes_coalesced += s.probes_coalesced;
  cumulative_.probes_reused += s.probes_reused;
  cumulative_.probes_shed += s.probes_shed;
  cumulative_.processing_ms += s.processing_ms;
  cumulative_.processing_skew_ms += s.processing_skew_ms;
  cumulative_.collection_latency_ms += s.collection_latency_ms;
  cumulative_.result_size += s.result_size;
}

// ---------------------------------------------------------------------------
// Full COLR-Tree: layered sampling over the slot-cached index.
// ---------------------------------------------------------------------------

QueryResult ColrEngine::ExecuteColr(const Query& query, TimeMs now,
                                    Rng& rng) {
  QueryResult result;
  Stopwatch watch;

  LayeredSampler::Options sopts;
  sopts.target = query.sample_size;
  sopts.terminal_level = query.cluster_level;
  sopts.oversample_level = options_.oversample_level;
  sopts.use_cache = options_.sampling_use_cache;
  sopts.oversample = options_.oversample;
  sopts.redistribute = options_.redistribute;

  ProbeAccounting acct;
  auto probe_fn = [this, &acct](const std::vector<SensorId>& ids) {
    return ProbeBatch(ids, &acct);
  };

  LayeredSampler::Result sres = LayeredSampler::Run(
      *tree_, query.region, now, query.staleness_ms, sopts, rng, probe_fn);

  // Assemble multi-resolution groups: each terminal contributes to its
  // ancestor at the query's cluster level.
  std::map<int, GroupResult> groups;
  for (const LayeredSampler::Terminal& t : sres.terminals) {
    const int gid = tree_->AncestorAtLevel(t.node_id, query.cluster_level);
    GroupResult& g = groups[gid];
    if (g.node_id < 0) {
      g.node_id = gid;
      g.bbox = tree_->node(gid).bbox;
      g.weight = tree_->node(gid).Weight();
    }
    g.agg.Merge(t.cached_agg);
    for (const Reading& r : t.collected) {
      g.agg.Add(r.value);
      AddToHistogram(query, r.value, &g);
    }

    // Instrumentation + cache bookkeeping. The sampler copied the used
    // readings out of the store under its lock (cached_readings), so
    // no store pointers are dereferenced here.
    for (size_t i = 0; i < t.cached_sensors.size(); ++i) {
      const Reading& r = t.cached_readings[i];
      if (query.return_readings) {
        result.served_from_cache.push_back(r);
      }
      AddToHistogram(query, r.value, &g);
      tree_->TouchCached(t.cached_sensors[i]);
    }
    result.stats.cache_readings_used +=
        t.node_id >= 0 && tree_->node(t.node_id).IsLeaf() ? t.cached_count
                                                          : 0;
    result.stats.cached_agg_readings +=
        t.node_id >= 0 && !tree_->node(t.node_id).IsLeaf() ? t.cached_count
                                                           : 0;
    result.stats.slots_merged += t.cached_slots_merged;
    result.stats.result_size +=
        static_cast<int64_t>(t.collected.size()) + t.cached_count;

    TerminalRecord rec;
    rec.node_id = t.node_id;
    rec.target = t.target;
    rec.probes_attempted = t.probes_attempted;
    rec.probes_succeeded = static_cast<int>(t.collected.size());
    rec.cached_used = t.cached_count;
    result.stats.terminals.push_back(rec);

    result.collected.insert(result.collected.end(), t.collected.begin(),
                            t.collected.end());
  }
  for (auto& [gid, g] : groups) result.groups.push_back(std::move(g));

  // Populate the cache with everything we just collected (the whole
  // point of coupling collection with the index).
  for (const Reading& r : result.collected) tree_->InsertReading(r);

  result.stats.nodes_traversed = sres.nodes_traversed;
  result.stats.internal_nodes_traversed = sres.internal_nodes_traversed;
  result.stats.cached_nodes_accessed = sres.cached_nodes_accessed;
  FinishProbeStats(acct, watch.ElapsedMillis(), &result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Range lookup without sampling: kHierCache (slot caches on) and
// kRTree (pure index, probe everything).
// ---------------------------------------------------------------------------

QueryResult ColrEngine::ExecuteRange(const Query& query, TimeMs now,
                                     bool use_cache) {
  QueryResult result;
  Stopwatch watch;

  std::map<int, GroupResult> groups;
  auto group_for = [&](int node_id) -> GroupResult& {
    const int gid = tree_->AncestorAtLevel(node_id, query.cluster_level);
    GroupResult& g = groups[gid];
    if (g.node_id < 0) {
      g.node_id = gid;
      g.bbox = tree_->node(gid).bbox;
      g.weight = tree_->node(gid).Weight();
    }
    return g;
  };

  ProbeAccounting acct;
  std::vector<SensorId> touched;
  // Query-wide ≤1-probe guard: the per-leaf batches below are built
  // from disjoint leaf memberships today, but the contract is the
  // paper's, not the tree's — a sensor reachable under two visited
  // groups must still be probed (and counted) once.
  ProbeDeduper dedup;

  if (tree_->root() >= 0 &&
      query.region.Intersects(tree_->node(tree_->root()).bbox)) {
    std::vector<int> stack{tree_->root()};
    std::vector<int> hits(
        static_cast<size_t>(tree_->arena().max_fanout()));
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      const ColrTree::Node& n = tree_->node(id);
      ++result.stats.nodes_traversed;
      if (!n.IsLeaf()) ++result.stats.internal_nodes_traversed;

      const bool contained = query.region.Contains(n.bbox);
      if (use_cache && contained && !n.IsLeaf() &&
          !query.return_readings && query.histogram_buckets <= 0 &&
          n.level >= query.cluster_level) {
        // Early termination when the subtree is fully answerable from
        // its slot cache (§IV-B Lookup). Only at or below the result
        // granularity, so multi-resolution groups stay distinct.
        const int64_t cached =
            tree_->CachedCount(id, now, query.staleness_ms);
        if (cached >= n.Weight()) {
          ColrTree::CacheLookup lookup =
              tree_->LookupCache(id, now, query.staleness_ms);
          GroupResult& g = group_for(id);
          g.agg.Merge(lookup.agg);
          ++result.stats.cached_nodes_accessed;
          result.stats.cached_agg_readings += lookup.agg.count;
          result.stats.slots_merged += lookup.slots_merged;
          result.stats.result_size += lookup.agg.count;
          continue;
        }
      }

      if (!n.IsLeaf()) {
        // Vectorized bbox prefilter over the node's contiguous child
        // block (SoA MBR scan). A polygonal region refines each hit
        // exactly as QueryRegion::Intersects would — its bbox precheck
        // is what the kernel just computed.
        const int k = tree_->arena().OverlapChildren(id, query.region.bbox,
                                                     hits.data());
        for (int t = 0; t < k; ++t) {
          const int c = hits[t];
          if (query.region.polygon &&
              !query.region.polygon->Intersects(tree_->node(c).bbox)) {
            continue;
          }
          stack.push_back(c);
        }
        continue;
      }

      // Leaf: serve from cache what we can, probe the rest.
      std::vector<SensorId> to_probe;
      GroupResult& g = group_for(id);
      if (use_cache) {
        const bool partial = !contained;
        Rect filter = query.region.bbox;
        // Slot-aligned admission: sensors whose cached reading sits in
        // the query slot or older are re-probed (and thereby
        // refreshed), so hot subtrees converge to full slot-aligned
        // coverage and the early-termination test above can fire.
        ColrTree::CacheLookup lookup = tree_->LookupCache(
            id, now, query.staleness_ms, partial ? &filter : nullptr,
            ColrTree::FreshnessRule::kSlotAligned);
        std::unordered_set<SensorId> used;
        used.reserve(lookup.used_sensors.size());
        for (size_t i = 0; i < lookup.used_sensors.size(); ++i) {
          const SensorId sid = lookup.used_sensors[i];
          if (query.region.polygon &&
              !query.region.Contains(tree_->sensor(sid).location)) {
            continue;
          }
          used.insert(sid);
          dedup.MarkServed(sid);
          const Reading& cached_reading = lookup.used_readings[i];
          g.agg.Add(cached_reading.value);
          AddToHistogram(query, cached_reading.value, &g);
          touched.push_back(sid);
          if (query.return_readings) {
            result.served_from_cache.push_back(cached_reading);
          }
        }
        if (!used.empty()) ++result.stats.cached_nodes_accessed;
        result.stats.cache_readings_used += used.size();
        result.stats.result_size += used.size();
        for (SensorId sid :
             tree_->SensorsUnderInRegion(id, query.region.bbox)) {
          if (query.region.polygon &&
              !query.region.Contains(tree_->sensor(sid).location)) {
            continue;
          }
          if (used.count(sid) == 0 && dedup.Admit(sid)) {
            to_probe.push_back(sid);
          }
        }
      } else {
        for (SensorId sid :
             tree_->SensorsUnderInRegion(id, query.region.bbox)) {
          if (query.region.polygon &&
              !query.region.Contains(tree_->sensor(sid).location)) {
            continue;
          }
          if (dedup.Admit(sid)) to_probe.push_back(sid);
        }
      }
      if (!to_probe.empty()) {
        std::vector<Reading> readings = ProbeBatch(to_probe, &acct);
        for (const Reading& r : readings) {
          g.agg.Add(r.value);
          AddToHistogram(query, r.value, &g);
        }
        result.stats.result_size += static_cast<int64_t>(readings.size());
        result.collected.insert(result.collected.end(), readings.begin(),
                                readings.end());
      }
    }
  }

  for (SensorId sid : touched) tree_->TouchCached(sid);
  if (use_cache) {
    for (const Reading& r : result.collected) tree_->InsertReading(r);
  }
  // Every visited group is reported, even when all of its probes
  // failed and no cached reading contributed: the group's node_id,
  // bbox and weight still tell the client the cluster exists (the same
  // contract as ExecuteColr, which emits every sampled terminal's
  // group unconditionally — an all-sensors-unavailable leaf yields an
  // empty aggregate, not a missing group).
  for (auto& [gid, g] : groups) result.groups.push_back(g);

  FinishProbeStats(acct, watch.ElapsedMillis(), &result.stats);
  return result;
}

// ---------------------------------------------------------------------------
// Flat cache baseline: full catalog scan per query.
// ---------------------------------------------------------------------------

QueryResult ColrEngine::ExecuteFlat(const Query& query, TimeMs now) {
  QueryResult result;
  Stopwatch watch;

  FlatCache::Lookup lookup;
  {
    MutexLock lock(flat_mutex_, SyncSite::kEngineFlat);
    lookup = flat_->Query(query.region, now, query.staleness_ms);
  }
  ProbeAccounting acct;
  std::vector<Reading> probed = ProbeBatch(lookup.missing, &acct);

  GroupResult g;
  g.node_id = -1;
  g.bbox = query.region.bbox;
  if (query.return_readings) result.served_from_cache = lookup.cached;
  for (const Reading& r : lookup.cached) {
    g.agg.Add(r.value);
    AddToHistogram(query, r.value, &g);
  }
  for (const Reading& r : probed) {
    g.agg.Add(r.value);
    AddToHistogram(query, r.value, &g);
  }
  g.weight = static_cast<int>(lookup.cached.size() + lookup.missing.size());
  result.groups.push_back(std::move(g));

  {
    MutexLock lock(flat_mutex_, SyncSite::kEngineFlat);
    for (const Reading& r : probed) flat_->Insert(r);
  }
  result.collected = std::move(probed);

  result.stats.cache_readings_used =
      static_cast<int64_t>(lookup.cached.size());
  result.stats.result_size =
      static_cast<int64_t>(lookup.cached.size() + result.collected.size());
  FinishProbeStats(acct, watch.ElapsedMillis(), &result.stats);
  return result;
}

}  // namespace colr
