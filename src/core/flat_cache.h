#ifndef COLR_CORE_FLAT_CACHE_H_
#define COLR_CORE_FLAT_CACHE_H_

#include <vector>

#include "core/query.h"
#include "core/reading_store.h"
#include "core/slot_cache.h"
#include "sensor/sensor.h"

namespace colr {

/// The "flat cache" baseline of §VII-C: a collection-aware cache of
/// raw sensor readings with no index and no aggregates. Every query
/// scans the entire sensor catalog, serves what it can from cached
/// fresh readings, and reports the remaining in-region sensors for
/// probing. Shares the slot-based expiry machinery and the cache size
/// constraint with COLR-Tree so the comparison isolates the effect of
/// indexing + aggregate caching + sampling.
class FlatCache {
 public:
  FlatCache(const std::vector<SensorInfo>* sensors, TimeMs slot_delta_ms,
            TimeMs t_max_ms, size_t capacity)
      : sensors_(sensors),
        scheme_(slot_delta_ms, t_max_ms),
        store_(capacity) {}

  struct Lookup {
    /// Cached readings satisfying region + freshness.
    std::vector<Reading> cached;
    /// In-region sensors with no usable cached reading (to probe).
    std::vector<SensorId> missing;
    /// Sensors examined (always the full catalog — that is the point).
    int64_t scanned = 0;
  };

  Lookup Query(const QueryRegion& region, TimeMs now, TimeMs staleness_ms);

  /// Caches a collected reading, rolling the window as needed.
  void Insert(const Reading& reading);

  void AdvanceTo(TimeMs now);

  size_t size() const { return store_.size(); }

 private:
  const std::vector<SensorInfo>* sensors_;
  SlotScheme scheme_;
  ReadingStore store_;
};

}  // namespace colr

#endif  // COLR_CORE_FLAT_CACHE_H_
