#include "core/flat_cache.h"

namespace colr {

FlatCache::Lookup FlatCache::Query(const QueryRegion& region, TimeMs now,
                                   TimeMs staleness_ms) {
  Lookup out;
  out.scanned = static_cast<int64_t>(sensors_->size());
  for (const SensorInfo& s : *sensors_) {
    if (!region.Contains(s.location)) continue;
    const Reading* r = store_.Get(s.id);
    if (r != nullptr && r->ValidAt(now - staleness_ms)) {
      out.cached.push_back(*r);
      store_.Touch(s.id);
    } else {
      out.missing.push_back(s.id);
    }
  }
  return out;
}

void FlatCache::Insert(const Reading& reading) {
  scheme_.RollTo(scheme_.SlotOf(reading.expiry));
  store_.ExpungeExpiredSlots(scheme_);
  store_.Insert(scheme_, reading);
}

void FlatCache::AdvanceTo(TimeMs now) {
  const SlotId needed =
      scheme_.SlotOf(now) + scheme_.num_slots() - 1;
  if (scheme_.RollTo(needed) > 0) {
    store_.ExpungeExpiredSlots(scheme_);
  }
}

}  // namespace colr
