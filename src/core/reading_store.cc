#include "core/reading_store.h"

namespace colr {

ReadingStore::InsertOutcome ReadingStore::Insert(const SlotScheme& scheme,
                                                 const Reading& reading) {
  InsertOutcome outcome;
  auto it = entries_.find(reading.sensor);
  if (it != entries_.end()) {
    outcome.replaced = true;
    outcome.old_reading = it->second.reading;
    Unlink(it);
    entries_.erase(it);
  }

  const SlotId slot = scheme.SlotOf(reading.expiry);
  auto& lru = slots_[slot];
  lru.push_back(reading.sensor);
  Entry entry;
  entry.reading = reading;
  entry.slot = slot;
  entry.lru_it = std::prev(lru.end());
  entries_.emplace(reading.sensor, entry);

  // Enforce the capacity constraint: evict least-recently-fetched
  // readings from the oldest occupied slot first.
  while (capacity_ > 0 && entries_.size() > capacity_) {
    auto slot_it = slots_.begin();
    SensorId victim = slot_it->second.front();
    if (victim == reading.sensor) {
      // Never evict the reading we just inserted; it is by definition
      // the only entry we must keep. Pick the next candidate.
      if (slot_it->second.size() > 1) {
        victim = *std::next(slot_it->second.begin());
      } else if (std::next(slot_it) != slots_.end()) {
        victim = std::next(slot_it)->second.front();
      } else {
        break;  // store holds only the new reading
      }
    }
    auto vit = entries_.find(victim);
    outcome.evicted.push_back(vit->second.reading);
    Unlink(vit);
    entries_.erase(vit);
  }
  return outcome;
}

void ReadingStore::Touch(SensorId sensor) {
  auto it = entries_.find(sensor);
  if (it == entries_.end()) return;
  auto& lru = slots_[it->second.slot];
  lru.splice(lru.end(), lru, it->second.lru_it);
  it->second.lru_it = std::prev(lru.end());
}

const Reading* ReadingStore::Get(SensorId sensor) const {
  auto it = entries_.find(sensor);
  return it == entries_.end() ? nullptr : &it->second.reading;
}

std::vector<Reading> ReadingStore::ExpungeExpiredSlots(
    const SlotScheme& scheme) {
  std::vector<Reading> expunged;
  while (!slots_.empty() && slots_.begin()->first < scheme.oldest()) {
    auto& lru = slots_.begin()->second;
    for (SensorId sensor : lru) {
      auto it = entries_.find(sensor);
      expunged.push_back(it->second.reading);
      entries_.erase(it);
    }
    slots_.erase(slots_.begin());
  }
  return expunged;
}

bool ReadingStore::Erase(SensorId sensor) {
  auto it = entries_.find(sensor);
  if (it == entries_.end()) return false;
  Unlink(it);
  entries_.erase(it);
  return true;
}

void ReadingStore::Clear() {
  entries_.clear();
  slots_.clear();
}

void ReadingStore::Unlink(
    std::unordered_map<SensorId, Entry>::iterator it) {
  auto slot_it = slots_.find(it->second.slot);
  slot_it->second.erase(it->second.lru_it);
  if (slot_it->second.empty()) slots_.erase(slot_it);
}

}  // namespace colr
