#include "core/reading_store.h"

namespace colr {

ReadingStore::InsertOutcome ReadingStore::Insert(const SlotScheme& scheme,
                                                 const Reading& reading) {
  InsertOutcome outcome = InsertWithoutEviction(scheme, reading);
  // Enforce the capacity constraint: evict least-recently-fetched
  // readings from the oldest occupied slot first.
  while (capacity_ > 0 && entries_.size() > capacity_) {
    std::optional<Reading> victim = PeekEvictionCandidate(reading.sensor);
    if (!victim) break;  // store holds only the new reading
    outcome.evicted.push_back(*victim);
    Erase(victim->sensor);
  }
  return outcome;
}

ReadingStore::InsertOutcome ReadingStore::InsertWithoutEviction(
    const SlotScheme& scheme, const Reading& reading) {
  InsertOutcome outcome;
  auto it = entries_.find(reading.sensor);
  if (it != entries_.end()) {
    outcome.replaced = true;
    outcome.old_reading = it->second.reading;
    Unlink(it);
    entries_.erase(it);
  }

  const SlotId slot = scheme.SlotOf(reading.expiry);
  auto& lru = slots_[slot];
  lru.push_back(reading.sensor);
  Entry entry;
  entry.reading = reading;
  entry.slot = slot;
  entry.seq = NextSeq();
  entry.lru_it = std::prev(lru.end());
  entries_.emplace(reading.sensor, entry);
  PublishSize();
  return outcome;
}

std::optional<ReadingStore::EvictionCandidate>
ReadingStore::PeekEvictionCandidateInfo(SensorId protect) const {
  if (slots_.empty()) return std::nullopt;
  auto slot_it = slots_.begin();
  SensorId victim = slot_it->second.front();
  if (victim == protect) {
    // Never evict the reading that was just inserted; it is by
    // definition the one entry the caller must keep. Pick the next
    // candidate.
    if (slot_it->second.size() > 1) {
      victim = *std::next(slot_it->second.begin());
    } else if (std::next(slot_it) != slots_.end()) {
      victim = std::next(slot_it)->second.front();
    } else {
      return std::nullopt;
    }
  }
  const Entry& e = entries_.at(victim);
  EvictionCandidate cand;
  cand.reading = e.reading;
  cand.slot = e.slot;
  cand.seq = e.seq;
  return cand;
}

std::optional<Reading> ReadingStore::PeekEvictionCandidate(
    SensorId protect) const {
  std::optional<EvictionCandidate> cand = PeekEvictionCandidateInfo(protect);
  if (!cand) return std::nullopt;
  return cand->reading;
}

void ReadingStore::Touch(SensorId sensor) {
  auto it = entries_.find(sensor);
  if (it == entries_.end()) return;
  auto& lru = slots_[it->second.slot];
  lru.splice(lru.end(), lru, it->second.lru_it);
  it->second.lru_it = std::prev(lru.end());
  it->second.seq = NextSeq();
}

const Reading* ReadingStore::Get(SensorId sensor) const {
  auto it = entries_.find(sensor);
  return it == entries_.end() ? nullptr : &it->second.reading;
}

std::vector<Reading> ReadingStore::ExpungeExpiredSlots(
    const SlotScheme& scheme) {
  std::vector<Reading> expunged;
  while (!slots_.empty() && slots_.begin()->first < scheme.oldest()) {
    auto& lru = slots_.begin()->second;
    for (SensorId sensor : lru) {
      auto it = entries_.find(sensor);
      expunged.push_back(it->second.reading);
      entries_.erase(it);
    }
    slots_.erase(slots_.begin());
  }
  PublishSize();
  return expunged;
}

bool ReadingStore::Erase(SensorId sensor) {
  auto it = entries_.find(sensor);
  if (it == entries_.end()) return false;
  Unlink(it);
  entries_.erase(it);
  PublishSize();
  return true;
}

size_t ReadingStore::OccupiedSlots() const { return slots_.size(); }

void ReadingStore::Clear() {
  entries_.clear();
  slots_.clear();
  PublishSize();
}

void ReadingStore::Unlink(
    std::unordered_map<SensorId, Entry>::iterator it) {
  auto slot_it = slots_.find(it->second.slot);
  slot_it->second.erase(it->second.lru_it);
  if (slot_it->second.empty()) slots_.erase(slot_it);
}

}  // namespace colr
