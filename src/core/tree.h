#ifndef COLR_CORE_TREE_H_
#define COLR_CORE_TREE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "cluster/cluster_tree.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "core/reading_store.h"
#include "core/slot_cache.h"
#include "geo/geo.h"
#include "sensor/sensor.h"

namespace colr {

/// The COLR-Tree index structure: a k-means cluster hierarchy over
/// sensor locations (built in batch, §III-C) where every node carries
/// a slot cache — leaves cache raw readings (via the shared
/// ReadingStore), internal nodes cache per-slot aggregates over their
/// descendants' cached readings (§IV-B). All caches share one globally
/// aligned SlotScheme.
///
/// This class owns structure + cache state and their maintenance
/// (the native equivalent of the paper's roll / slot-insert /
/// slot-delete / slot-update triggers). Query execution lives in
/// ColrEngine; sampling in sampling.{h,cc}.
///
/// Thread safety (full lock hierarchy in DESIGN.md "Concurrency
/// model"): the tree structure (topology, bboxes, item ranges, the
/// sensor catalog) is immutable after construction and read lock-free.
/// Mutable cache state is protected at three levels —
///   1. write_mutex_ serializes whole cache mutations (InsertReading,
///      AdvanceTo), so the propagation triggers retain their exact
///      sequential semantics;
///   2. a striped per-node lock table guards each node's slot cache
///      and cached-sensor set, letting concurrent queries read nodes
///      the writer is not currently touching;
///   3. store_mutex_ guards the shared raw-reading store.
/// Node mean availability and the slot-window head are single atomic
/// words. Query threads must use the copying accessors (LookupCache,
/// CachedReading, ...); the raw store() reference is for
/// single-threaded tests and tools only.
class ColrTree {
 public:
  struct Options {
    ClusterTreeOptions cluster;
    /// Slot width Δ. Choose with OptimizeSlotSize() (§IV-C) or default
    /// to t_max / 4.
    TimeMs slot_delta_ms = 0;
    /// Maximum sensor expiry period t_max. 0 = derive from sensors.
    TimeMs t_max_ms = 0;
    /// How long past its expiry a reading may stay in the window.
    /// Queries with staleness bound S can use readings that expired up
    /// to S ago (DESIGN.md freshness semantics), so the window keeps
    /// this much history beyond t_max. Negative = default to t_max.
    TimeMs stale_margin_ms = -1;
    /// Raw-reading cache capacity (number of readings); 0 = unbounded.
    size_t cache_capacity = 0;
  };

  struct Node {
    Rect bbox;
    Point centroid;
    int level = 0;  // root = 0
    int parent = -1;
    std::vector<int> children;
    /// Range into sensor_order() enumerating descendant sensors.
    int item_begin = 0;
    int item_end = 0;
    /// Mean historical availability of descendant sensors (a_i, §V-A).
    /// Atomic: refreshed online by the availability tracker while
    /// query threads read it.
    AtomicDouble mean_availability = 1.0;
    /// Maximum expiry period among descendant sensors (metadata for
    /// clients sizing staleness bounds; the window must span it).
    TimeMs max_expiry_ms = 0;
    /// Per-slot aggregates over cached readings under this node.
    /// Guarded by the node's stripe in node_mutex_.
    AggregateSlotCache cache;
    /// Leaf only: sensors with a currently cached reading. Guarded by
    /// the node's stripe in node_mutex_.
    std::vector<SensorId> cached_sensors;

    bool IsLeaf() const { return children.empty(); }
    int Weight() const { return item_end - item_begin; }
  };

  ColrTree(std::vector<SensorInfo> sensors, Options options);

  ColrTree(const ColrTree&) = delete;
  ColrTree& operator=(const ColrTree&) = delete;

  // ---- Structure access (immutable after construction) ------------------

  int root() const { return root_; }
  int height() const { return height_; }
  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(int id) const { return nodes_[id]; }
  const std::vector<SensorInfo>& sensors() const { return sensors_; }
  const SensorInfo& sensor(SensorId id) const { return sensors_[id]; }
  /// Permutation of sensor ids; node item ranges index into it.
  const std::vector<SensorId>& sensor_order() const { return sensor_order_; }
  /// Leaf node id holding a sensor.
  int LeafOf(SensorId sensor) const { return leaf_of_sensor_[sensor]; }
  /// Ancestor of `node_id` at `level` (or the node itself if it is
  /// already at or above that level).
  int AncestorAtLevel(int node_id, int level) const {
    int n = node_id;
    while (n >= 0 && nodes_[n].level > level && nodes_[n].parent >= 0) {
      n = nodes_[n].parent;
    }
    return n;
  }
  const SlotScheme& scheme() const { return scheme_; }
  /// Maximum sensor expiry period (resolved from options or sensors).
  TimeMs t_max_ms() const { return t_max_ms_; }
  const Options& options() const { return options_; }
  /// Raw store reference for single-threaded tests/tools. Concurrent
  /// callers must use CachedReading()/CachedReadingCount() instead:
  /// pointers returned by store().Get() are not stable under
  /// concurrent inserts and evictions.
  const ReadingStore& store() const { return store_; }

  /// Exact number of sensors inside `region` (the "ideal result set
  /// size" used to bin queries in Fig. 3).
  int CountSensorsInRegion(const Rect& region) const;

  /// Maps a CLUSTER distance (the query's grouping radius, §III-B) to
  /// the coarsest tree level whose nodes' mean bounding-box diagonal
  /// does not exceed it. Clamped to [0, height-1].
  int LevelForClusterDistance(double distance) const;

  /// Replaces every node's mean-availability metadata from fresh
  /// per-sensor estimates (indexed by SensorId) — the hook for an
  /// online AvailabilityTracker. Estimates drive the oversampling
  /// factor of Algorithm 1. Thread-safe (atomic per-node stores).
  void RefreshAvailability(const std::vector<double>& estimates);

  /// Sensor ids under `node_id` whose location lies inside `region`.
  std::vector<SensorId> SensorsUnderInRegion(int node_id,
                                             const Rect& region) const;

  // ---- Cache maintenance (the paper's triggers) -------------------------

  /// Inserts a freshly collected reading: rolls the global window if
  /// the reading's expiry lies beyond the newest slot (roll trigger),
  /// stores it at the leaf (slot insert trigger, evicting under the
  /// cache constraint — slot delete trigger), and propagates aggregate
  /// deltas to the root (slot update trigger). A reading whose expiry
  /// slot already slid out of the window (late arrival after a
  /// concurrent roll) is dropped and counted — caching it would both
  /// be useless (no query can admit it) and corrupt the ring caches.
  /// Thread-safe; mutations are serialized on write_mutex_.
  void InsertReading(const Reading& reading);

  /// Advances the window so it covers `now` .. `now + t_max` and
  /// expunges slots that slid out. Called at query time so idle
  /// periods don't leave stale slots in the window. Thread-safe.
  void AdvanceTo(TimeMs now);

  /// Marks cached readings as fetched (LRF policy input). Thread-safe.
  void TouchCached(SensorId sensor);

  size_t CachedReadingCount() const;

  /// Cumulative counters over the cache-maintenance triggers — what a
  /// moving-clock replay exercises (roll → expunge cascade, §IV-B) and
  /// what bench/timed_replay reports. All atomic; snapshot freely.
  struct MaintenanceCounters {
    /// Roll events (window head advanced at least one slot).
    AtomicCounter<int64_t> rolls = 0;
    /// Total slots the window slid across all rolls.
    AtomicCounter<int64_t> slots_rolled = 0;
    /// Readings expunged because their slot slid out of the window.
    AtomicCounter<int64_t> readings_expunged = 0;
    /// Readings evicted by the store's capacity constraint.
    AtomicCounter<int64_t> readings_evicted = 0;
    /// Late-arriving readings dropped because their expiry slot was
    /// already outside the window at insert time.
    AtomicCounter<int64_t> late_readings_dropped = 0;
    /// Non-invertible removals that forced a slot recompute from
    /// children (the cache-table recompute cascade).
    AtomicCounter<int64_t> slot_recomputes = 0;
  };
  const MaintenanceCounters& maintenance() const { return maintenance_; }

  // ---- Cache lookup -----------------------------------------------------

  /// The query slot for the query's freshness requirement: the slot
  /// containing the freshness bound timestamp `now - staleness`.
  /// Slots strictly newer are usable — they hold readings whose expiry
  /// lies beyond the bound, i.e., readings still valid within the
  /// user's staleness window (§IV-A Lookup; see DESIGN.md).
  SlotId QuerySlot(const Node& node, TimeMs now, TimeMs staleness_ms) const;

  /// Cached aggregate at an internal node: merge of all usable slots
  /// (strictly newer than the query slot). For leaves, performs the
  /// paper's exact per-entry inspection (expiry vs freshness bound +
  /// optional region refinement) over the leaf's cached readings.
  struct CacheLookup {
    Aggregate agg;
    int slots_merged = 0;
    /// Sensors whose cached reading was used (leaf lookups only;
    /// internal lookups report counts via agg.count).
    std::vector<SensorId> used_sensors;
    /// The used readings themselves, aligned with used_sensors —
    /// copied out under the store lock so callers never dereference
    /// store pointers outside it.
    std::vector<Reading> used_readings;
  };
  /// How leaf entries are admitted against the freshness bound.
  ///   kExact       — per-entry expiry comparison, including entries
  ///                  in the query slot itself (§IV-B leaf
  ///                  refinement). Admits the most readings.
  ///   kSlotAligned — the same slot rule internal aggregates use.
  ///                  Used by the sensor-selection path (§VI-A filters
  ///                  "sufficiently cached" nodes by slot-aligned
  ///                  cache weights) so that borderline readings get
  ///                  re-probed and refreshed instead of pinning
  ///                  subtrees just below full-cache coverage.
  enum class FreshnessRule { kExact, kSlotAligned };
  CacheLookup LookupCache(int node_id, TimeMs now, TimeMs staleness_ms,
                          const Rect* region_filter = nullptr,
                          FreshnessRule rule = FreshnessRule::kExact) const;

  /// Number of cached readings usable for the given freshness at a
  /// node — the |c_i| term of Algorithm 1. Conservative (slot rule)
  /// at internal nodes, exact at leaves.
  int64_t CachedCount(int node_id, TimeMs now, TimeMs staleness_ms) const;

  /// Copy of the cached reading for a sensor (empty if none). The
  /// thread-safe replacement for store().Get().
  std::optional<Reading> CachedReading(SensorId sensor) const;

  /// Whether the sensor's cached reading lies in a window slot
  /// strictly newer than `query_slot` — the slot-aligned admission
  /// rule the sampler's candidate filter shares with internal
  /// aggregate lookups.
  bool CachedInNewerSlot(SensorId sensor, SlotId query_slot) const;

  /// Structural / cache-consistency invariants (tests): per-node slot
  /// aggregates equal the aggregates recomputed from the raw cached
  /// readings below the node.
  Status CheckCacheConsistency() const;

 private:
  void ExpungeAfterRoll();
  void PropagateAdd(int leaf_id, SlotId slot, double value);
  void PropagateRemove(int leaf_id, SlotId slot, double value);
  void RecomputeSlotFromChildren(int node_id, SlotId slot);
  Aggregate LeafSlotAggregate(int leaf_id, SlotId slot) const;
  void RemoveFromLeafCachedSet(SensorId sensor);

  Options options_;
  std::vector<SensorInfo> sensors_;
  std::vector<Node> nodes_;
  std::vector<SensorId> sensor_order_;
  /// leaf node id for each sensor.
  std::vector<int> leaf_of_sensor_;
  int root_ = -1;
  int height_ = 0;
  TimeMs t_max_ms_ = 0;
  SlotScheme scheme_;
  ReadingStore store_;

  /// Serializes cache mutations (level 1 of the lock hierarchy).
  mutable std::mutex write_mutex_;
  /// Per-node stripe locks (level 2). A thread holds at most one
  /// stripe, except the serialized writer during slot recomputes.
  mutable StripedMutex node_mutex_;
  /// Guards the shared ReadingStore (level 3, innermost).
  mutable std::shared_mutex store_mutex_;
  MaintenanceCounters maintenance_;
};

}  // namespace colr

#endif  // COLR_CORE_TREE_H_
