#ifndef COLR_CORE_TREE_H_
#define COLR_CORE_TREE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_tree.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/sync_stats.h"
#include "common/thread_annotations.h"
#include "core/node_arena.h"
#include "core/reading_store.h"
#include "core/slot_cache.h"
#include "geo/geo.h"
#include "sensor/sensor.h"

namespace colr {

/// The COLR-Tree index structure: a k-means cluster hierarchy over
/// sensor locations (built in batch, §III-C) where every node carries
/// a slot cache — leaves cache raw readings (via the shared
/// ReadingStore), internal nodes cache per-slot aggregates over their
/// descendants' cached readings (§IV-B). All caches share one globally
/// aligned SlotScheme.
///
/// This class owns structure + cache state and their maintenance
/// (the native equivalent of the paper's roll / slot-insert /
/// slot-delete / slot-update triggers). Query execution lives in
/// ColrEngine; sampling in sampling.{h,cc}.
///
/// Thread safety (full lock hierarchy in DESIGN.md "Concurrency
/// model"): the tree structure (topology, bboxes, item ranges, the
/// sensor catalog) is immutable after construction and read lock-free.
/// Mutable cache state is protected by an epoch-versioned, subtree-
/// sharded write protocol, acquired strictly in this order —
///   1. epoch_latch_: writers (InsertReading) hold it shared, so the
///      slot-window head is frozen for the duration of an insert;
///      window rolls/expunges (AdvanceTo, the insert-side roll
///      trigger) and whole-tree audits (CheckCacheConsistency) hold
///      it exclusive and advance the epoch;
///   2. shard_mutex_: a striped writer lock keyed by the leaf's
///      ancestor at writer_shard_level (the "shard node"). Inserts
///      whose leaf-to-root paths diverge below the shard level
///      proceed fully concurrently;
///   3. root_mutex_: the shard node and its ancestors are shared by
///      every shard, so that top path segment (at most
///      writer_shard_level + 1 ring updates) merges under one short
///      critical section — it also makes the non-invertible min/max
///      recompute safe, because a recompute at any root-region node
///      holds the lock that covers all mutators of its children;
///   4. node_mutex_ (innermost): striped per-node locks guarding each
///      node's slot cache, cached-sensor set and leaf-resident reading
///      table (held one at a time), letting concurrent queries read
///      nodes a writer is not touching.
/// There is no global store lock: the raw-reading store is sharded
/// the same way as the writers — each shard's ReadingStore is guarded
/// by that shard's stripe in shard_mutex_, which the insert path
/// already holds, so an insert performs zero global lock
/// acquisitions. A shared atomic fetch-sequence stamp totally orders
/// fetches across shards, and capacity eviction picks the global
/// least-recently-fetched victim by comparing per-shard candidates by
/// (slot, seq) — the exact order the former single store evicted in.
/// Per-slot version tags (AggregateSlotCache::SlotVersion) additionally
/// validate recompute-from-children against concurrent slot mutation,
/// turning any protocol gap into a retry instead of a lost update.
/// Node mean availability and the slot-window head are single atomic
/// words. All threads (including tests) read cached readings through
/// the copying accessors (LookupCache, CachedReading, ...); the
/// per-shard stores are internal.
///
/// The epoch side of this protocol is *statically checked*: every
/// private maintenance method carries a COLR_REQUIRES /
/// COLR_REQUIRES_SHARED contract on epoch_latch_ and `clang
/// -Wthread-safety` (the static leg of scripts/check.sh) proves each
/// call path acquires the right mode. The striped levels
/// (shard_mutex_, node_mutex_) resolve their stripe at runtime, which
/// the analysis cannot follow — those contracts live in the DESIGN.md
/// §6 lock-to-data table and are exercised by the TSan suites instead.
class ColrTree {
 public:
  struct Options {
    ClusterTreeOptions cluster;
    /// Slot width Δ. Choose with OptimizeSlotSize() (§IV-C) or default
    /// to t_max / 4.
    TimeMs slot_delta_ms = 0;
    /// Maximum sensor expiry period t_max. 0 = derive from sensors.
    TimeMs t_max_ms = 0;
    /// How long past its expiry a reading may stay in the window.
    /// Queries with staleness bound S can use readings that expired up
    /// to S ago (DESIGN.md freshness semantics), so the window keeps
    /// this much history beyond t_max. Negative = default to t_max.
    TimeMs stale_margin_ms = -1;
    /// Raw-reading cache capacity (number of readings); 0 = unbounded.
    size_t cache_capacity = 0;
    /// Level of the "shard node" partitioning concurrent writers:
    /// inserts lock only their leaf's ancestor at this level (plus the
    /// short root-region critical section above it). -1 = auto (level
    /// 1 — the root's children — which maximizes the concurrent
    /// portion of the propagation path); 0 = a single shard, i.e.
    /// writers fully serialized (the pre-sharding behavior, kept as
    /// the baseline mode for writer-scaling benchmarks).
    int writer_shard_level = -1;
    /// Enables the process-wide lock-contention counters (sync_stats.h)
    /// for every lock site in the write protocol. Off by default: the
    /// instrumented guards then take the identical plain lock() path.
    /// Equivalent to COLR_SYNC_STATS=1 in the environment; sticky for
    /// the process (counters are cumulative, consumers read deltas).
    bool sync_stats = false;
  };

  /// Structural node view: the one-cache-line arena record. All
  /// structural fields (bbox, level, parent, item range, child block)
  /// are immutable after construction. Mutable per-node cache state —
  /// slot caches, availability, leaf reading tables — lives in the
  /// tree's parallel arrays and is reached through the id-based
  /// accessors below (slot_cache(), mean_availability(), ...), not
  /// through the record.
  using Node = ArenaNodeRecord;

  ColrTree(std::vector<SensorInfo> sensors, Options options);

  ColrTree(const ColrTree&) = delete;
  ColrTree& operator=(const ColrTree&) = delete;

  // ---- Structure access (immutable after construction) ------------------

  int root() const { return root_; }
  int height() const { return height_; }
  size_t num_nodes() const { return arena_.size(); }
  const Node& node(int id) const { return arena_.record(id); }
  /// The node's children as an arena-id range (breadth ordering makes
  /// every child block contiguous; iteration order matches the cluster
  /// build's left-to-right child order).
  ChildRange children(int id) const { return arena_.children(id); }
  const Point& centroid(int id) const { return arena_.centroid(id); }
  const NodeArena& arena() const { return arena_; }
  /// Mean historical availability of the node's descendant sensors
  /// (a_i, §V-A). Atomic: refreshed online by the availability tracker
  /// while query threads read it.
  double mean_availability(int id) const {
    return availability_[static_cast<size_t>(id)];
  }
  /// The node's per-slot aggregate cache (tests and diagnostics only;
  /// guarded by the node's stripe in node_mutex_ on mutating paths).
  const AggregateSlotCache& slot_cache(int id) const {
    return caches_[static_cast<size_t>(id)];
  }
  const std::vector<SensorInfo>& sensors() const { return sensors_; }
  const SensorInfo& sensor(SensorId id) const { return sensors_[id]; }
  /// Permutation of sensor ids; node item ranges index into it.
  const std::vector<SensorId>& sensor_order() const { return sensor_order_; }
  /// Leaf node id holding a sensor.
  int LeafOf(SensorId sensor) const { return leaf_of_sensor_[sensor]; }
  /// Ancestor of `node_id` at `level` (or the node itself if it is
  /// already at or above that level).
  int AncestorAtLevel(int node_id, int level) const {
    int n = node_id;
    while (n >= 0 && arena_.record(n).level > level &&
           arena_.record(n).parent >= 0) {
      n = arena_.record(n).parent;
    }
    return n;
  }
  const SlotScheme& scheme() const { return scheme_; }
  /// Maximum sensor expiry period (resolved from options or sensors).
  TimeMs t_max_ms() const { return t_max_ms_; }
  const Options& options() const { return options_; }

  /// Exact number of sensors inside `region` (the "ideal result set
  /// size" used to bin queries in Fig. 3).
  int CountSensorsInRegion(const Rect& region) const;

  /// Maps a CLUSTER distance (the query's grouping radius, §III-B) to
  /// the coarsest tree level whose nodes' mean bounding-box diagonal
  /// does not exceed it. Clamped to [0, height-1].
  int LevelForClusterDistance(double distance) const;

  /// Replaces every node's mean-availability metadata from fresh
  /// per-sensor estimates (indexed by SensorId) — the hook for an
  /// online AvailabilityTracker. Estimates drive the oversampling
  /// factor of Algorithm 1. Thread-safe (atomic per-node stores).
  void RefreshAvailability(const std::vector<double>& estimates);

  /// Sensor ids under `node_id` whose location lies inside `region`.
  std::vector<SensorId> SensorsUnderInRegion(int node_id,
                                             const Rect& region) const;

  // ---- Cache maintenance (the paper's triggers) -------------------------

  /// Inserts a freshly collected reading: rolls the global window if
  /// the reading's expiry lies beyond the newest slot (roll trigger),
  /// stores it at the leaf (slot insert trigger, evicting under the
  /// cache constraint — slot delete trigger), and propagates aggregate
  /// deltas to the root (slot update trigger). A reading whose expiry
  /// slot already slid out of the window (late arrival after a
  /// concurrent roll) is dropped and counted — caching it would both
  /// be useless (no query can admit it) and corrupt the ring caches.
  /// Thread-safe; inserts into disjoint writer shards run
  /// concurrently (see the class comment's lock hierarchy). The
  /// EXCLUDES contract encodes that the epoch latch is not reentrant:
  /// calling back into the write path from maintenance would
  /// self-deadlock.
  void InsertReading(const Reading& reading) COLR_EXCLUDES(epoch_latch_);

  /// Advances the window so it covers `now` .. `now + t_max` and
  /// expunges slots that slid out. Called at query time so idle
  /// periods don't leave stale slots in the window. Thread-safe.
  void AdvanceTo(TimeMs now) COLR_EXCLUDES(epoch_latch_);

  /// Marks cached readings as fetched (LRF policy input). Thread-safe.
  void TouchCached(SensorId sensor) COLR_EXCLUDES(epoch_latch_);

  size_t CachedReadingCount() const;

  /// Cumulative counters over the cache-maintenance triggers — what a
  /// moving-clock replay exercises (roll → expunge cascade, §IV-B) and
  /// what bench/timed_replay reports. All atomic; snapshot freely.
  struct MaintenanceCounters {
    /// Roll events (window head advanced at least one slot).
    AtomicCounter<int64_t> rolls = 0;
    /// Total slots the window slid across all rolls.
    AtomicCounter<int64_t> slots_rolled = 0;
    /// Readings expunged because their slot slid out of the window.
    AtomicCounter<int64_t> readings_expunged = 0;
    /// Readings evicted by the store's capacity constraint.
    AtomicCounter<int64_t> readings_evicted = 0;
    /// Late-arriving readings dropped because their expiry slot was
    /// already outside the window at insert time.
    AtomicCounter<int64_t> late_readings_dropped = 0;
    /// Non-invertible removals that forced a slot recompute from
    /// children (the cache-table recompute cascade).
    AtomicCounter<int64_t> slot_recomputes = 0;
    /// Recomputes whose version-tag validation failed and retried —
    /// expected to stay 0 (the shard/root lock domains make child
    /// snapshots stable); any nonzero value flags a protocol gap the
    /// version tags absorbed.
    AtomicCounter<int64_t> slot_recompute_retries = 0;
    /// Lock-contention counters per sync site (all zeros unless sync
    /// stats are enabled). Only stamped by MaintenanceSnapshot() —
    /// the live maintenance() reference keeps an empty snapshot.
    SyncStatsSnapshot sync;
  };
  const MaintenanceCounters& maintenance() const { return maintenance_; }
  /// Copy of the maintenance counters with the current process-wide
  /// sync-stats snapshot stamped into `.sync` — what benches diff
  /// before/after a run (see SyncStatsDelta / replay::CounterDelta).
  MaintenanceCounters MaintenanceSnapshot() const;

  /// Resolved writer-sharding level (Options::writer_shard_level with
  /// -1 resolved against the built tree's height).
  int writer_shard_level() const { return shard_level_; }

  /// Per-shard cache occupancy: cached readings and distinct occupied
  /// slots in each writer shard's store. Follows the writer protocol
  /// (shared epoch + each shard's stripe, one at a time), so it is
  /// safe to call concurrently with inserts. Diagnostics for the
  /// writer-scaling sweep: a skewed balance explains shard_writer
  /// contention that shard count alone would not.
  struct ShardOccupancy {
    int shard_node = -1;
    size_t readings = 0;
    size_t occupied_slots = 0;
  };
  std::vector<ShardOccupancy> ShardOccupancies() const
      COLR_EXCLUDES(epoch_latch_);

  /// Number of completed exclusive write epochs (window rolls,
  /// consistency audits). Advances at least once per roll.
  uint64_t write_epoch() const { return epoch_latch_.epoch(); }

  // ---- Cache lookup -----------------------------------------------------

  /// The query slot for the query's freshness requirement: the slot
  /// containing the freshness bound timestamp `now - staleness`.
  /// Slots strictly newer are usable — they hold readings whose expiry
  /// lies beyond the bound, i.e., readings still valid within the
  /// user's staleness window (§IV-A Lookup; see DESIGN.md). The slot
  /// is global (one SlotScheme for every node), so no node argument.
  SlotId QuerySlot(TimeMs now, TimeMs staleness_ms) const;

  /// Cached aggregate at an internal node: merge of all usable slots
  /// (strictly newer than the query slot). For leaves, performs the
  /// paper's exact per-entry inspection (expiry vs freshness bound +
  /// optional region refinement) over the leaf's cached readings.
  struct CacheLookup {
    Aggregate agg;
    int slots_merged = 0;
    /// Sensors whose cached reading was used (leaf lookups only;
    /// internal lookups report counts via agg.count).
    std::vector<SensorId> used_sensors;
    /// The used readings themselves, aligned with used_sensors —
    /// copied out under the leaf's stripe so callers never hold
    /// references into the leaf-resident reading table.
    std::vector<Reading> used_readings;
  };
  /// How leaf entries are admitted against the freshness bound.
  ///   kExact       — per-entry expiry comparison, including entries
  ///                  in the query slot itself (§IV-B leaf
  ///                  refinement). Admits the most readings.
  ///   kSlotAligned — the same slot rule internal aggregates use.
  ///                  Used by the sensor-selection path (§VI-A filters
  ///                  "sufficiently cached" nodes by slot-aligned
  ///                  cache weights) so that borderline readings get
  ///                  re-probed and refreshed instead of pinning
  ///                  subtrees just below full-cache coverage.
  enum class FreshnessRule { kExact, kSlotAligned };
  CacheLookup LookupCache(int node_id, TimeMs now, TimeMs staleness_ms,
                          const Rect* region_filter = nullptr,
                          FreshnessRule rule = FreshnessRule::kExact) const;

  /// Number of cached readings usable for the given freshness at a
  /// node — the |c_i| term of Algorithm 1. Conservative (slot rule)
  /// at internal nodes, exact at leaves.
  int64_t CachedCount(int node_id, TimeMs now, TimeMs staleness_ms) const;

  /// Copy of the cached reading for a sensor (empty if none). The
  /// thread-safe replacement for store().Get().
  std::optional<Reading> CachedReading(SensorId sensor) const;

  /// Whether the sensor's cached reading lies in a window slot
  /// strictly newer than `query_slot` — the slot-aligned admission
  /// rule the sampler's candidate filter shares with internal
  /// aggregate lookups.
  bool CachedInNewerSlot(SensorId sensor, SlotId query_slot) const;

  /// Structural / cache-consistency invariants (tests): per-node slot
  /// aggregates equal the aggregates recomputed from the raw cached
  /// readings below the node.
  Status CheckCacheConsistency() const COLR_EXCLUDES(epoch_latch_);

 private:
  /// Advances the window head to `slot` and, if it actually moved,
  /// counts the roll and expunges slid-out readings. The exclusive
  /// epoch the contract demands is what drains every shared-epoch
  /// writer before the head moves.
  void RollWindowLocked(SlotId slot) COLR_REQUIRES(epoch_latch_);
  void ExpungeAfterRoll() COLR_REQUIRES(epoch_latch_);
  /// Shard node (lock key into shard_mutex_) for a leaf's write path.
  int ShardOf(int leaf_id) const {
    return AncestorAtLevel(leaf_id, shard_level_);
  }
  /// The shard-local reading store for a leaf's sensors. Guarded by
  /// the shard's stripe in shard_mutex_; the epoch contract keeps the
  /// exclusive side (rolls/expunges walk the stores with no stripes
  /// held) drained while any caller is inside a store.
  ReadingStore& StoreForLeaf(int leaf_id)
      COLR_REQUIRES_SHARED(epoch_latch_) {
    return stores_[static_cast<size_t>(store_index_of_node_[ShardOf(leaf_id)])];
  }
  const ReadingStore& StoreForLeaf(int leaf_id) const
      COLR_REQUIRES_SHARED(epoch_latch_) {
    return stores_[static_cast<size_t>(store_index_of_node_[ShardOf(leaf_id)])];
  }
  /// Store lookup for the exclusive-epoch audit (CheckCacheConsistency
  /// holds the exclusive side, which satisfies the shared requirement
  /// and drains every store mutator).
  const Reading* StoredReadingLocked(SensorId sid) const
      COLR_REQUIRES_SHARED(epoch_latch_);
  /// Evicts store entries until the capacity constraint holds, each
  /// under the *victim's* shard lock. Caller must hold the shared
  /// epoch and no shard lock. `protect` is never evicted.
  void EnforceCacheCapacity(SensorId protect)
      COLR_REQUIRES_SHARED(epoch_latch_);
  void PropagateAdd(int leaf_id, SlotId slot, double value)
      COLR_REQUIRES_SHARED(epoch_latch_);
  void PropagateRemove(int leaf_id, SlotId slot, double value)
      COLR_REQUIRES_SHARED(epoch_latch_);
  /// One step of PropagateRemove: undoes `value` at `node_id`,
  /// recomputing the slot from children when the decrement was not
  /// invertible.
  void RemoveSlotValueAt(int node_id, SlotId slot, double value)
      COLR_REQUIRES_SHARED(epoch_latch_);
  void RecomputeSlotFromChildren(int node_id, SlotId slot)
      COLR_REQUIRES_SHARED(epoch_latch_);
  Aggregate LeafSlotAggregate(int leaf_id, SlotId slot) const
      COLR_REQUIRES_SHARED(epoch_latch_);
  void RemoveFromLeafCachedSet(SensorId sensor)
      COLR_REQUIRES_SHARED(epoch_latch_);

  Options options_;
  std::vector<SensorInfo> sensors_;
  /// Flat breadth-ordered structure storage: one-cache-line records
  /// plus the SoA child-MBR arrays the traversal kernels scan.
  NodeArena arena_;
  /// Per-node slot-aggregate caches, indexed by arena id. Contiguous:
  /// a recompute-from-children walks the consecutive cache objects of
  /// the node's child block. Each guarded by its node's stripe in
  /// node_mutex_.
  std::vector<AggregateSlotCache> caches_;
  /// Per-node mean availability (atomic words, indexed by arena id).
  std::vector<AtomicDouble> availability_;
  /// Leaf-resident cache tables, indexed by arena id (empty for
  /// internal nodes), each guarded by its node's stripe in
  /// node_mutex_: the sensors with a currently cached reading plus the
  /// reading per sensor — the leaf mirror of the per-shard
  /// ReadingStore entries. Slot recomputes and leaf lookups read these
  /// tables instead of the stores, so the hot read paths stay inside
  /// the shard's own lock domain.
  struct LeafCacheTable {
    std::vector<SensorId> cached_sensors;
    std::unordered_map<SensorId, Reading> cached_readings;
  };
  std::vector<LeafCacheTable> leaf_tables_;
  std::vector<SensorId> sensor_order_;
  /// leaf node id for each sensor.
  std::vector<int> leaf_of_sensor_;
  int root_ = -1;
  int height_ = 0;
  TimeMs t_max_ms_ = 0;
  SlotScheme scheme_;
  /// One ReadingStore per writer shard, each guarded by its shard's
  /// stripe in shard_mutex_ and sharing fetch_seq_ so eviction order
  /// is globally exact. Individual stores are unbounded; the tree
  /// enforces options_.cache_capacity across all of them
  /// (EnforceCacheCapacity), tracking the total entry count in
  /// cached_total_.
  std::vector<ReadingStore> stores_;
  /// Shard node id of each store in stores_ (lock key).
  std::vector<int> shard_node_of_store_;
  /// node id -> index into stores_ (-1 for non-shard nodes).
  std::vector<int> store_index_of_node_;
  /// Fetch-sequence source shared by all per-shard stores.
  std::atomic<uint64_t> fetch_seq_{0};
  /// Total readings cached across all shards.
  std::atomic<size_t> cached_total_{0};

  /// Resolved Options::writer_shard_level.
  int shard_level_ = 0;
  /// Level 1 of the lock hierarchy: shared by writers (freezes the
  /// window head for the duration of an insert), exclusive for rolls,
  /// expunges and consistency audits.
  mutable EpochLatch epoch_latch_{SyncSite::kEpochShared,
                                  SyncSite::kEpochExclusive};
  /// Level 2: per-shard writer locks, keyed by the shard node id.
  /// A thread holds at most one shard stripe at a time.
  mutable StripedMutex shard_mutex_{SyncSite::kShardWriter};
  /// Level 3: serializes mutation of the root region (the shard node
  /// and its ancestors), which every shard's propagation path shares.
  /// A SpinMutex: the section is two ring-buffer updates (plus a rare
  /// recompute), far below the cost of a contended futex handoff.
  mutable SpinMutex root_mutex_{SyncSite::kRootSpin};
  /// Level 4 (innermost): per-node stripe locks. A thread holds at
  /// most one stripe at a time.
  mutable StripedMutex node_mutex_{SyncSite::kNodeStripe};
  MaintenanceCounters maintenance_;
};

}  // namespace colr

#endif  // COLR_CORE_TREE_H_
