#ifndef COLR_CORE_NODE_ARENA_H_
#define COLR_CORE_NODE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <vector>

#include "cluster/cluster_tree.h"
#include "common/clock.h"
#include "geo/geo.h"
#include "geo/overlap.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace colr {

/// One node of the flat COLR-Tree arena. Exactly one cache line: a
/// traversal step reads a node's bbox, level and child block with a
/// single line fill, and two nodes never false-share.
///
/// The arena is breadth-ordered (BFS from the root), which gives every
/// node a *contiguous* child block [child_begin, child_begin +
/// child_count) — child adjacency is arithmetic, not a heap-allocated
/// id vector. All structural fields are immutable after construction;
/// mutable per-node cache state lives in ColrTree's parallel arrays,
/// indexed by the same arena ids.
struct alignas(64) ArenaNodeRecord {
  Rect bbox;               // 32 bytes: min_x, min_y, max_x, max_y
  int32_t level = 0;       // root = 0
  int32_t parent = -1;     // arena id (-1 at the root)
  int32_t child_begin = 0; // arena id of the first child
  int32_t child_count = 0; // 0 = leaf
  /// Range into ColrTree::sensor_order() enumerating descendant
  /// sensors.
  int32_t item_begin = 0;
  int32_t item_end = 0;
  /// Maximum expiry period among descendant sensors (metadata for
  /// clients sizing staleness bounds; the window must span it).
  TimeMs max_expiry_ms = 0;

  bool IsLeaf() const { return child_count == 0; }
  int Weight() const { return item_end - item_begin; }
};

// The record layout is load-bearing: traversal cost and the SoA side
// arrays both assume one 64-byte line per node. A field addition that
// pushes the record past one line (or introduces padding drift) must
// fail here, at compile time, not silently regress the layout.
static_assert(sizeof(ArenaNodeRecord) == 64,
              "ArenaNodeRecord must stay exactly one cache line");
static_assert(alignof(ArenaNodeRecord) == 64,
              "ArenaNodeRecord must stay cache-line aligned");
static_assert(std::is_trivially_copyable_v<ArenaNodeRecord>,
              "ArenaNodeRecord must stay a plain record");
static_assert(sizeof(Rect) == 4 * sizeof(double),
              "Rect must stay four packed doubles");
static_assert(offsetof(ArenaNodeRecord, level) == 32,
              "structural fields must start right after the bbox");
static_assert(offsetof(ArenaNodeRecord, max_expiry_ms) == 56,
              "no padding between the int32 fields and max_expiry_ms");

/// Iterable view of a node's child ids: the half-open arena-id range
/// [begin, end). Replaces the per-node std::vector<int> of the pointer
/// layout — iteration yields the same left-to-right child order.
class ChildRange {
 public:
  class Iterator {
   public:
    explicit Iterator(int v) : v_(v) {}
    int operator*() const { return v_; }
    Iterator& operator++() {
      ++v_;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return v_ != o.v_; }
    bool operator==(const Iterator& o) const { return v_ == o.v_; }

   private:
    int v_;
  };

  ChildRange(int begin, int end) : begin_(begin), end_(end) {}
  Iterator begin() const { return Iterator(begin_); }
  Iterator end() const { return Iterator(end_); }
  int size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }
  int front() const { return begin_; }

 private:
  int begin_;
  int end_;
};

/// Flat, breadth-ordered storage for the COLR-Tree structure.
///
/// Built once from the k-means ClusterTree by renumbering its
/// DFS-preorder ids into BFS order: the root is id 0, every node's
/// children occupy consecutive ids, and ids are monotone in level.
/// Within a level the left-to-right node order of the cluster build is
/// preserved, so level-indexed statistics (LevelForClusterDistance)
/// accumulate in the same order as the pointer layout did.
///
/// Besides the AoS record pool, the arena keeps SoA mirrors of every
/// node's MBR (four parallel double arrays indexed by arena id). A
/// node's child block is a contiguous slice of those arrays, so the
/// child-overlap test of a traversal step is a branch-free linear scan
/// that the SIMD kernel processes two children per instruction.
class NodeArena {
 public:
  NodeArena() = default;
  explicit NodeArena(const ClusterTree& ct);

  int root() const { return records_.empty() ? -1 : 0; }
  int height() const { return height_; }
  size_t size() const { return records_.size(); }
  /// Largest child_count over all nodes — the scratch-buffer bound for
  /// OverlapChildren callers.
  int max_fanout() const { return max_fanout_; }

  const ArenaNodeRecord& record(int id) const {
    return records_[static_cast<size_t>(id)];
  }
  /// Construction-time hook for the owner to stamp derived metadata
  /// (max_expiry_ms); the structure fields must not be touched after
  /// the arena is shared across threads.
  ArenaNodeRecord& mutable_record(int id) {
    return records_[static_cast<size_t>(id)];
  }
  const Point& centroid(int id) const {
    return centroids_[static_cast<size_t>(id)];
  }
  ChildRange children(int id) const {
    const ArenaNodeRecord& r = record(id);
    return ChildRange(r.child_begin, r.child_begin + r.child_count);
  }

  /// Writes the ids of `id`'s children whose MBR overlaps `query` into
  /// `out` (capacity >= record(id).child_count) in ascending id order —
  /// the same order the pointer layout enumerated children — and
  /// returns how many were written. Dispatches to the SIMD kernel
  /// unless the build lacks SSE2 or COLR_FORCE_SCALAR_OVERLAP is set
  /// in the environment. Defined inline below: the per-call work is a
  /// handful of comparisons, so the kernel must inline into the
  /// traversal loops to beat the pointer layout's inlined
  /// Rect::Intersects calls.
  int OverlapChildren(int id, const Rect& query, int* out) const;
  /// The scalar kernel, always compiled and callable directly: the
  /// layout tests assert it agrees with OverlapChildren bit for bit.
  int OverlapChildrenScalar(int id, const Rect& query, int* out) const;

  /// True when COLR_FORCE_SCALAR_OVERLAP is set: OverlapChildren then
  /// takes the scalar path even on SIMD-capable builds. The getenv
  /// happens once per process (function-local static, shared across
  /// TUs); steady-state calls are a load and a predictable branch, so
  /// the dispatch check stays out of the kernel's critical path.
  static bool ForceScalarOverlap() {
    static const bool force =
        std::getenv("COLR_FORCE_SCALAR_OVERLAP") != nullptr;
    return force;
  }

 private:
  std::vector<ArenaNodeRecord> records_;
  std::vector<Point> centroids_;
  // SoA mirrors of each record's bbox, indexed by arena id. Contiguous
  // child blocks make a node's child-MBR scan four sequential array
  // slices.
  std::vector<double> mbr_min_x_;
  std::vector<double> mbr_min_y_;
  std::vector<double> mbr_max_x_;
  std::vector<double> mbr_max_y_;
  int height_ = 0;
  int max_fanout_ = 0;
};

inline int NodeArena::OverlapChildrenScalar(int id, const Rect& query,
                                            int* out) const {
  const ArenaNodeRecord& r = record(id);
  const int b = r.child_begin;
  const int k = r.child_count;
  int count = 0;
  for (int j = 0; j < k; ++j) {
    const size_t c = static_cast<size_t>(b + j);
    if (BoxesOverlap(mbr_min_x_[c], mbr_min_y_[c], mbr_max_x_[c],
                     mbr_max_y_[c], query.min_x, query.min_y, query.max_x,
                     query.max_y)) {
      out[count++] = b + j;
    }
  }
  return count;
}

#if defined(__SSE2__)
namespace internal {

/// Two children per step: each comparison below is one lane-parallel
/// evaluation of the corresponding BoxesOverlap comparison, so the
/// mask agrees with the scalar kernel bit for bit (including the
/// empty-rect encoding: an empty box's +inf/-inf bounds fail the
/// ordered <= / >= comparisons in every lane, just as they do in
/// scalar code).
inline int OverlapMask2(const double* min_x, const double* min_y,
                        const double* max_x, const double* max_y,
                        __m128d qminx, __m128d qminy, __m128d qmaxx,
                        __m128d qmaxy) {
  __m128d m = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(min_x), qmaxx),
                         _mm_cmpge_pd(_mm_loadu_pd(max_x), qminx));
  m = _mm_and_pd(m, _mm_cmple_pd(_mm_loadu_pd(min_y), qmaxy));
  m = _mm_and_pd(m, _mm_cmpge_pd(_mm_loadu_pd(max_y), qminy));
  return _mm_movemask_pd(m);
}

}  // namespace internal
#endif  // __SSE2__

inline int NodeArena::OverlapChildren(int id, const Rect& query,
                                      int* out) const {
#if defined(__SSE2__)
  if (!ForceScalarOverlap()) {
    const ArenaNodeRecord& r = record(id);
    const int b = r.child_begin;
    const int k = r.child_count;
    const __m128d qminx = _mm_set1_pd(query.min_x);
    const __m128d qminy = _mm_set1_pd(query.min_y);
    const __m128d qmaxx = _mm_set1_pd(query.max_x);
    const __m128d qmaxy = _mm_set1_pd(query.max_y);
    int count = 0;
    int j = 0;
    for (; j + 2 <= k; j += 2) {
      const size_t c = static_cast<size_t>(b + j);
      const int bits =
          internal::OverlapMask2(&mbr_min_x_[c], &mbr_min_y_[c],
                                 &mbr_max_x_[c], &mbr_max_y_[c], qminx,
                                 qminy, qmaxx, qmaxy);
      // Branchless emit: unconditional stores plus mask-bit advances
      // beat data-dependent branches on hit patterns the predictor
      // can't learn (which child of a node overlaps varies per query).
      out[count] = b + j;
      count += bits & 1;
      out[count] = b + j + 1;
      count += (bits >> 1) & 1;
    }
    for (; j < k; ++j) {
      const size_t c = static_cast<size_t>(b + j);
      if (BoxesOverlap(mbr_min_x_[c], mbr_min_y_[c], mbr_max_x_[c],
                       mbr_max_y_[c], query.min_x, query.min_y, query.max_x,
                       query.max_y)) {
        out[count++] = b + j;
      }
    }
    return count;
  }
#endif  // __SSE2__
  return OverlapChildrenScalar(id, query, out);
}

}  // namespace colr

#endif  // COLR_CORE_NODE_ARENA_H_
