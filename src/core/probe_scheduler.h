#ifndef COLR_CORE_PROBE_SCHEDULER_H_
#define COLR_CORE_PROBE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/sync.h"
#include "common/sync_stats.h"
#include "common/thread_annotations.h"
#include "sensor/network.h"

namespace colr {

/// Per-query guard for the paper's ≤1-probe contract *within* one
/// query: ExecuteRange offers every probe candidate here before adding
/// it to a leaf batch. The first offer of a sensor is admitted; any
/// repeat (a sensor reachable under two visited groups, or already
/// served from another group's cache slice) is dropped and counted, so
/// one query can never probe — or double-count — the same sensor
/// twice no matter how the visited groups overlap.
class ProbeDeduper {
 public:
  /// True exactly once per sensor id.
  bool Admit(SensorId id) {
    if (seen_.insert(id).second) return true;
    ++duplicates_;
    return false;
  }
  /// Marks a sensor as already answered (e.g. served from cache) so a
  /// later Admit() for it is rejected.
  void MarkServed(SensorId id) { seen_.insert(id); }
  int64_t duplicates_dropped() const { return duplicates_; }

 private:
  std::unordered_set<SensorId> seen_;
  int64_t duplicates_ = 0;
};

/// The boundary between query execution and the sensor network: every
/// engine probe goes through here (scripts/lint.py rule `probe-path`
/// bans direct SensorNetwork::ProbeBatch calls elsewhere). Three
/// mechanisms, all per sensor:
///
///   single-flight    While a probe for sensor s is in the network on
///                    behalf of one query, every other query wanting s
///                    joins that flight instead of issuing its own
///                    probe, and shares the fan-out result. This is
///                    the paper's ≤1-probe-per-sensor-per-Δ guarantee
///                    extended from one query stream to the whole
///                    serving fleet: N concurrent queries over a hot
///                    viewport cost one probe wave, not N.
///
///   token bucket     Each sensor accumulates probe tokens at
///                    1 / token_refill_ms (clock time, so replays and
///                    simulations behave identically). A request that
///                    finds the bucket empty is served from the
///                    sensor's last completed probe if it is younger
///                    than reuse_window_ms, otherwise shed. Off by
///                    default.
///
///   admission bound  A cap on sensor-probes outstanding in the
///                    network across all queries; requests beyond it
///                    are shed with load-shedding stats rather than
///                    queueing without bound. Off by default.
///
/// With all options at their defaults a single-threaded caller gets
/// bit-identical behaviour to calling the network directly: every id
/// leads its own probe, in request order, one network batch per call —
/// the golden determinism fingerprints do not move.
///
/// Locking: per-sensor state lives in fixed stripes (sensor id mod
/// kStripes), each an annotated Mutex instrumented as
/// SyncSite::kProbeFlight plus a condition_variable_any for flight
/// completion. A thread holds at most one stripe at a time and never
/// calls the network while holding one; joiners wait only after their
/// own lead batch has been published, so waits can only be on *other*
/// threads' flights and every leader makes progress unconditionally —
/// no cycle is possible. The stripes sit outside ColrTree's lock
/// hierarchy entirely (DESIGN.md §8).
class ProbeScheduler {
 public:
  struct Options {
    /// Bucket capacity (burst size) per sensor.
    double tokens_max = 1.0;
    /// Clock ms for one token to come back; <= 0 disables rate
    /// limiting entirely (the default — the cache layer above is the
    /// intended steady-state limiter, this is flash-crowd armor).
    TimeMs token_refill_ms = 0;
    /// Rate-limited requests reuse the sensor's last completed probe
    /// result when it is at most this old (clock ms); <= 0 = never
    /// reuse, always shed.
    TimeMs reuse_window_ms = 0;
    /// Max sensor-probes outstanding in the network at once; 0 =
    /// unbounded.
    size_t max_outstanding_probes = 0;
  };

  /// Issues one batch to the underlying collection substrate. The
  /// production backend is SensorNetwork::ProbeBatch; tests substitute
  /// lockstep fakes.
  using Backend =
      std::function<SensorNetwork::BatchResult(const std::vector<SensorId>&)>;

  /// Production scheduler over a live network (clock and catalog size
  /// are taken from it).
  ProbeScheduler(SensorNetwork* network, const Options& options);
  /// Test constructor: explicit backend, clock and sensor count.
  ProbeScheduler(Backend backend, const Clock* clock, size_t num_sensors,
                 const Options& options);

  ProbeScheduler(const ProbeScheduler&) = delete;
  ProbeScheduler& operator=(const ProbeScheduler&) = delete;

  /// Result of one scheduled batch, with the probes partitioned by how
  /// they were satisfied. readings = issued_readings ++ joined ++
  /// reused; requested == issued_ids.size() + coalesced + reused +
  /// shed always holds.
  struct BatchOutcome {
    /// Every reading collected for the caller (issued + joined +
    /// reused), issued ones first in network order.
    std::vector<Reading> readings;
    /// Ids this call actually sent to the network, in request order
    /// (duplicate occurrences preserved — the network counts each).
    std::vector<SensorId> issued_ids;
    /// The readings the network returned for issued_ids (subset of
    /// `readings`); the caller's availability accounting covers
    /// exactly these.
    std::vector<Reading> issued_readings;
    size_t requested = 0;
    /// Requests that joined another query's in-flight probe.
    size_t coalesced = 0;
    /// Requests served from a sensor's last completed probe (rate
    /// limiter hit within the reuse window).
    size_t reused = 0;
    /// Requests dropped (rate limiter outside the reuse window, or
    /// admission bound).
    size_t shed = 0;
    /// Collection latency of this call: the issued batch's simulated
    /// latency, maxed with the latencies of every joined flight
    /// (joining means waiting out the tail of someone else's probe).
    TimeMs latency_ms = 0;
  };

  /// Schedules one probe batch. Thread-safe; blocks until every
  /// issued and joined probe has completed.
  BatchOutcome ProbeBatch(const std::vector<SensorId>& ids);

  /// Cumulative scheduler counters (relaxed atomics; exact when read
  /// at quiescent points).
  struct Stats {
    int64_t requested = 0;
    int64_t issued = 0;
    int64_t coalesced = 0;
    int64_t reused = 0;
    int64_t shed_rate_limited = 0;
    int64_t shed_admission = 0;
    int64_t batches = 0;
  };
  Stats stats() const;

  const Options& options() const { return options_; }

 private:
  /// Few enough to keep the table cold-cache friendly, enough that 16
  /// query streams rarely collide on unrelated sensors.
  static constexpr size_t kStripes = 64;

  struct Stripe {
    Mutex mu{SyncSite::kProbeFlight};
    /// _any variant: waits on the annotated Mutex capability directly
    /// (same idiom as thread_pool.h).
    std::condition_variable_any cv;
  };

  /// Per-sensor scheduling state. Guarded by the sensor's stripe — a
  /// runtime-keyed association the static analysis cannot follow
  /// (same contract as StripedMutex; enforced by TSan).
  struct SensorState {
    /// A probe for this sensor is in the network right now.
    bool in_flight = false;
    /// Completed-flight counter; joiners capture it at classification
    /// and wait until it advances.
    uint64_t flights_done = 0;
    /// Last completed probe outcome (valid once has_result).
    bool has_result = false;
    bool last_success = false;
    Reading last_reading{};
    TimeMs last_latency_ms = 0;
    TimeMs last_done_ms = 0;
    /// Token bucket (lazily initialized to tokens_max on first use).
    bool tokens_init = false;
    double tokens = 0.0;
    TimeMs token_stamp_ms = 0;
  };

  Stripe& StripeFor(SensorId id) {
    return stripes_[static_cast<size_t>(id) % kStripes];
  }
  /// Refills s's bucket up to now (requires the sensor's stripe).
  void RefillTokens(SensorState* s, TimeMs now) const;
  /// Reserves one outstanding-probe slot; false when the admission
  /// bound is hit.
  bool ReserveOutstanding();

  Backend backend_;
  const Clock* clock_;
  Options options_;
  Stripe stripes_[kStripes];
  /// Indexed by sensor id; elements guarded by the id's stripe. The
  /// vector itself is immutable after construction.
  std::vector<SensorState> states_;
  std::atomic<size_t> outstanding_{0};

  AtomicCounter<int64_t> requested_ = 0;
  AtomicCounter<int64_t> issued_ = 0;
  AtomicCounter<int64_t> coalesced_ = 0;
  AtomicCounter<int64_t> reused_ = 0;
  AtomicCounter<int64_t> shed_rate_limited_ = 0;
  AtomicCounter<int64_t> shed_admission_ = 0;
  AtomicCounter<int64_t> batches_ = 0;
};

}  // namespace colr

#endif  // COLR_CORE_PROBE_SCHEDULER_H_
