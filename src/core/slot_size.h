#ifndef COLR_CORE_SLOT_SIZE_H_
#define COLR_CORE_SLOT_SIZE_H_

#include <cstdint>
#include <vector>

namespace colr {

/// The utility/cost framework of §IV-C for choosing the slot width Δ.
/// All times are normalized to t_max = 1.
///
/// cost(Δ)    ~ ⌊T/Δ⌋ + ⌈T/Δ⌉·f + (T − ⌊T/Δ⌋·Δ)·c, averaged over the
///              query workload's time windows T. Larger slots mean
///              fewer partials to combine per query.
/// utility(Δ) ~ Σ_i n_i·(i−1)·Δ over slots s_1..s_k, k = ⌈1/Δ⌉, where
///              n_i sensors expire within slot s_i: how long aggregated
///              data stays useful before its slot is discarded.
///
/// The recommended Δ maximizes utility/cost (Fig. 2).
struct SlotSizeWorkload {
  /// Query time windows T (each in (0, 1]).
  std::vector<double> query_windows;
  /// Sensor expiry times (each in (0, 1]).
  std::vector<double> expiry_fractions;
  /// f: fraction of queries that must update a slot with fresh data.
  double update_fraction = 0.5;
  /// c: data-collection cost normalized to per-slot processing cost.
  double collection_cost = 10.0;
};

struct SlotSizePoint {
  double delta = 0.0;
  double cost = 0.0;
  double utility = 0.0;
  double ratio = 0.0;
};

/// Evaluates cost, utility and their ratio for one slot size.
SlotSizePoint EvaluateSlotSize(const SlotSizeWorkload& workload,
                               double delta);

/// Evaluates every candidate Δ. Candidates must be in (0, 1].
std::vector<SlotSizePoint> SweepSlotSizes(const SlotSizeWorkload& workload,
                                          const std::vector<double>& deltas);

/// The Δ maximizing utility/cost over the sweep.
double OptimalSlotSize(const SlotSizeWorkload& workload,
                       const std::vector<double>& deltas);

/// Convenience: evenly spaced candidate slot sizes (0, 1].
std::vector<double> DefaultSlotSizeCandidates(int steps = 20);

/// End-to-end convenience: the recommended ColrTree::Options::
/// slot_delta_ms for a deployment with maximum expiry period `t_max_ms`
/// under the given (normalized) workload. "COLR-Tree can be configured
/// with the optimal slot size found by using the target workload in
/// the above framework" (§IV-C).
int64_t RecommendSlotDelta(const SlotSizeWorkload& workload,
                           int64_t t_max_ms);

}  // namespace colr

#endif  // COLR_CORE_SLOT_SIZE_H_
