#include "core/aggregate.h"

#include <cstdio>

namespace colr {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount: return "count";
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kAvg: return "avg";
    case AggregateKind::kMin: return "min";
    case AggregateKind::kMax: return "max";
  }
  return "unknown";
}

std::string Aggregate::ToString() const {
  if (empty()) return "{empty}";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{count=%lld sum=%.3f min=%.3f max=%.3f}",
                static_cast<long long>(count), sum, min, max);
  return buf;
}

}  // namespace colr
