#ifndef COLR_CORE_ENGINE_H_
#define COLR_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/flat_cache.h"
#include "core/query.h"
#include "core/sampling.h"
#include "core/tree.h"
#include "sensor/availability.h"
#include "sensor/network.h"

namespace colr {

/// Query execution over a COLR-Tree, in the four configurations the
/// paper evaluates (§VII-B/C):
///
///   kRTree     — plain R-tree behaviour: no caching, no sampling;
///                every in-region sensor is probed per query.
///   kFlatCache — raw readings cached in a flat store that is scanned
///                per query; no index, no aggregates, no sampling.
///   kHierCache — COLR-Tree slot caches with the standard range
///                lookup: fully-cached subtrees answer from their
///                aggregates, everything else is probed. No sampling.
///   kColr      — the full system: slot caches + layered sampling.
///
/// The engine is the boundary between query processing and data
/// collection: it owns the probe batching (parallel within a batch),
/// cache population with collected readings, and all instrumentation.
class ColrEngine {
 public:
  enum class Mode { kRTree, kFlatCache, kHierCache, kColr };

  static const char* ModeName(Mode mode);

  struct Options {
    Mode mode = Mode::kColr;
    /// Oversampling level O of Algorithm 1.
    int oversample_level = 1;
    bool oversample = true;
    bool redistribute = true;
    /// Let layered sampling consult the slot caches (line 9/15 of
    /// Algorithm 1). Off = sample as if nothing were cached (ablation).
    bool sampling_use_cache = true;
    /// Compute stats.region_sensor_count per query (costs one exact
    /// count traversal; used by the Fig. 3/6 harnesses).
    bool fill_region_count = false;
    /// Learn per-sensor availability online from probe outcomes
    /// (EWMA) and refresh the tree's per-node means periodically —
    /// keeps the oversampling factor honest when registered
    /// availability metadata is wrong or drifts (§V-A "historical
    /// availability").
    bool track_availability = false;
    /// Queries between availability refreshes of the tree.
    int availability_refresh_interval = 50;
    uint64_t seed = 0xC0FFEEu;
  };

  ColrEngine(ColrTree* tree, SensorNetwork* network, Options options);

  ColrEngine(const ColrEngine&) = delete;
  ColrEngine& operator=(const ColrEngine&) = delete;

  /// Executes a portal query at the network clock's current time.
  QueryResult Execute(const Query& query);

  const ColrTree& tree() const { return *tree_; }
  Mode mode() const { return options_.mode; }

  /// Counters accumulated over all executed queries.
  const QueryStats& cumulative() const { return cumulative_; }
  void ResetCumulative() { cumulative_ = QueryStats{}; }

  /// The online availability estimator (nullptr unless
  /// Options::track_availability).
  const AvailabilityTracker* availability_tracker() const {
    return tracker_.get();
  }

 private:
  struct ProbeAccounting {
    int64_t attempted = 0;
    int64_t succeeded = 0;
    TimeMs max_batch_latency_ms = 0;
    /// Wall-clock time spent inside the simulated network; excluded
    /// from processing_ms (a real deployment overlaps collection with
    /// processing, and the simulator's CPU cost is an artifact).
    double sim_wall_ms = 0.0;
  };

  std::vector<Reading> ProbeBatch(const std::vector<SensorId>& ids,
                                  ProbeAccounting* acct);

  QueryResult ExecuteColr(const Query& query, TimeMs now);
  /// Shared by kRTree (use_cache = false) and kHierCache (true).
  QueryResult ExecuteRange(const Query& query, TimeMs now, bool use_cache);
  QueryResult ExecuteFlat(const Query& query, TimeMs now);

  void FinishQuery(const Query& query, TimeMs now, QueryResult* result);

  ColrTree* tree_;
  SensorNetwork* network_;
  const Clock* clock_;
  Options options_;
  Rng rng_;
  std::unique_ptr<FlatCache> flat_;
  std::unique_ptr<AvailabilityTracker> tracker_;
  int64_t queries_since_refresh_ = 0;
  QueryStats cumulative_;
};

}  // namespace colr

#endif  // COLR_CORE_ENGINE_H_
