#ifndef COLR_CORE_ENGINE_H_
#define COLR_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "core/flat_cache.h"
#include "core/probe_scheduler.h"
#include "core/query.h"
#include "core/sampling.h"
#include "core/tree.h"
#include "sensor/availability.h"
#include "sensor/network.h"

namespace colr {

/// Per-query execution state: the RNG stream driving this query's
/// sampling decisions plus nothing else — all remaining per-query
/// state already lives in the QueryResult being built. Contexts are
/// cheap to construct; concurrent drivers make one per query, seeded
/// deterministically from the engine seed and a query ordinal
/// (DeriveSeed), so a run's outcome depends on the (seed, ordinal)
/// assignment but never on thread scheduling.
class ExecutionContext {
 public:
  /// Context owning its own RNG (concurrent execution).
  explicit ExecutionContext(uint64_t seed) : owned_(seed), rng_(&owned_) {}
  /// Context borrowing an external RNG stream. The sequential
  /// Execute() overload borrows the engine's persistent RNG so
  /// single-threaded runs consume exactly the pre-concurrency stream.
  explicit ExecutionContext(Rng* rng) : owned_(0), rng_(rng) {}

  Rng& rng() { return *rng_; }

 private:
  Rng owned_;
  Rng* rng_;
};

/// Query execution over a COLR-Tree, in the four configurations the
/// paper evaluates (§VII-B/C):
///
///   kRTree     — plain R-tree behaviour: no caching, no sampling;
///                every in-region sensor is probed per query.
///   kFlatCache — raw readings cached in a flat store that is scanned
///                per query; no index, no aggregates, no sampling.
///   kHierCache — COLR-Tree slot caches with the standard range
///                lookup: fully-cached subtrees answer from their
///                aggregates, everything else is probed. No sampling.
///   kColr      — the full system: slot caches + layered sampling.
///
/// The engine is the boundary between query processing and data
/// collection: it owns the probe batching (parallel within a batch),
/// cache population with collected readings, and all instrumentation.
///
/// Thread safety: the engine itself is an immutable plan/traversal
/// core over thread-safe components. Execute(query, ctx) may be called
/// from many threads at once — per-query mutable state lives in the
/// ExecutionContext and the QueryResult; cumulative counters are
/// atomics. The convenience overload Execute(query) borrows the
/// engine's persistent RNG and is therefore for single-threaded
/// (sequential) use only; it reproduces the pre-concurrency behaviour
/// bit for bit.
class ColrEngine {
 public:
  enum class Mode { kRTree, kFlatCache, kHierCache, kColr };

  static const char* ModeName(Mode mode);

  struct Options {
    Mode mode = Mode::kColr;
    /// Oversampling level O of Algorithm 1.
    int oversample_level = 1;
    bool oversample = true;
    bool redistribute = true;
    /// Let layered sampling consult the slot caches (line 9/15 of
    /// Algorithm 1). Off = sample as if nothing were cached (ablation).
    bool sampling_use_cache = true;
    /// Compute stats.region_sensor_count per query (costs one exact
    /// count traversal; used by the Fig. 3/6 harnesses).
    bool fill_region_count = false;
    /// Learn per-sensor availability online from probe outcomes
    /// (EWMA) and refresh the tree's per-node means periodically —
    /// keeps the oversampling factor honest when registered
    /// availability metadata is wrong or drifts (§V-A "historical
    /// availability").
    bool track_availability = false;
    /// Clock time between availability refreshes of the tree, off the
    /// engine's clock (simulated or replay). Clock-driven rather than
    /// query-count-driven so the refresh cadence is decoupled from the
    /// workload rate: a burst of queries doesn't thrash the tree's
    /// node means, and a trickle doesn't starve them.
    TimeMs availability_refresh_ms = kMsPerMinute;
    /// Probe scheduling between the engine and the network: cross-
    /// query single-flight coalescing (always on — it is invisible to
    /// a single query stream), plus the optional token-bucket rate
    /// limiter and admission bound (both off by default).
    ProbeScheduler::Options probe;
    uint64_t seed = 0xC0FFEEu;
  };

  ColrEngine(ColrTree* tree, SensorNetwork* network, Options options);

  ColrEngine(const ColrEngine&) = delete;
  ColrEngine& operator=(const ColrEngine&) = delete;

  /// Executes a portal query at the network clock's current time using
  /// the engine's own RNG stream. Sequential use only (one caller at a
  /// time); bit-identical to the pre-concurrency engine.
  QueryResult Execute(const Query& query);

  /// Thread-safe execution with caller-supplied per-query state.
  QueryResult Execute(const Query& query, ExecutionContext& ctx);

  /// Deterministic per-query seed for concurrent drivers: mixes the
  /// engine seed with the query's ordinal position in the workload.
  uint64_t QuerySeed(uint64_t ordinal) const {
    return DeriveSeed(options_.seed, ordinal);
  }

  /// The engine's base seed — the seed axis remote-serving layers
  /// (net::PortalServer) inherit so server-side query streams stay on
  /// the same deterministic footing as the engine's own.
  uint64_t seed() const { return options_.seed; }

  const ColrTree& tree() const { return *tree_; }
  Mode mode() const { return options_.mode; }

  /// Snapshot of the counters accumulated over all executed queries.
  QueryStats cumulative() const;
  void ResetCumulative();

  /// The online availability estimator (nullptr unless
  /// Options::track_availability).
  const AvailabilityTracker* availability_tracker() const {
    return tracker_.get();
  }

  /// The scheduler every engine probe goes through (single-flight /
  /// rate-limit / admission counters live here).
  const ProbeScheduler& probe_scheduler() const { return *scheduler_; }

 private:
  /// Test hook (tests/engine_test.cc): drives ProbeBatch directly to
  /// pin down per-occurrence availability accounting for batches with
  /// duplicated sensor ids.
  friend struct ColrEngineTestPeer;

  struct ProbeAccounting {
    /// Probe requests this query made (pre-scheduling occurrences).
    int64_t requested = 0;
    /// Probes actually issued to the network on this query's behalf;
    /// this is what stats.sensors_probed reports, so summed over all
    /// queries it equals the network's probe counter exactly.
    int64_t attempted = 0;
    /// Readings collected for this query (issued + joined + reused).
    int64_t succeeded = 0;
    int64_t coalesced = 0;
    int64_t reused = 0;
    int64_t shed = 0;
    /// Sum of the sequential batches' collection latencies (each
    /// already the max over its parallel probes and joined flights) —
    /// the query's total simulated data-collection time. A
    /// single-batch query's total equals its max.
    TimeMs total_latency_ms = 0;
    TimeMs max_batch_latency_ms = 0;
    /// Wall-clock time spent inside the simulated network; excluded
    /// from processing_ms (a real deployment overlaps collection with
    /// processing, and the simulator's CPU cost is an artifact).
    double sim_wall_ms = 0.0;
  };

  /// Cumulative counters, atomic so concurrent FinishQuery calls
  /// merge without a lock. Snapshot via cumulative().
  struct Cumulative {
    AtomicCounter<int64_t> nodes_traversed = 0;
    AtomicCounter<int64_t> internal_nodes_traversed = 0;
    AtomicCounter<int64_t> cached_nodes_accessed = 0;
    AtomicCounter<int64_t> sensors_probed = 0;
    AtomicCounter<int64_t> probe_successes = 0;
    AtomicCounter<int64_t> cache_readings_used = 0;
    AtomicCounter<int64_t> cached_agg_readings = 0;
    AtomicCounter<int64_t> slots_merged = 0;
    AtomicCounter<int64_t> probes_coalesced = 0;
    AtomicCounter<int64_t> probes_reused = 0;
    AtomicCounter<int64_t> probes_shed = 0;
    AtomicDouble processing_ms = 0.0;
    AtomicDouble processing_skew_ms = 0.0;
    AtomicCounter<int64_t> collection_latency_ms = 0;
    AtomicCounter<int64_t> result_size = 0;
  };

  std::vector<Reading> ProbeBatch(const std::vector<SensorId>& ids,
                                  ProbeAccounting* acct);

  /// Moves a finished query's probe accounting into its stats
  /// (collection latency = total over sequential batches; negative
  /// processing skew surfaced, never silently clamped).
  static void FinishProbeStats(const ProbeAccounting& acct,
                               double elapsed_ms, QueryStats* stats);

  QueryResult ExecuteColr(const Query& query, TimeMs now, Rng& rng);
  /// Shared by kRTree (use_cache = false) and kHierCache (true).
  QueryResult ExecuteRange(const Query& query, TimeMs now, bool use_cache);
  QueryResult ExecuteFlat(const Query& query, TimeMs now);

  void FinishQuery(const Query& query, TimeMs now, QueryResult* result);

  ColrTree* tree_;
  SensorNetwork* network_;
  /// All probes flow through here (never network_->ProbeBatch
  /// directly; the probe-path lint pins that).
  std::unique_ptr<ProbeScheduler> scheduler_;
  const Clock* clock_;
  Options options_;
  /// The sequential-path RNG (borrowed by Execute(query)'s context).
  Rng rng_;
  std::unique_ptr<FlatCache> flat_ COLR_PT_GUARDED_BY(flat_mutex_);
  /// FlatCache is a plain scan structure; concurrent flat-mode queries
  /// serialize their cache access here (probing still overlaps).
  mutable Mutex flat_mutex_{SyncSite::kEngineFlat};
  std::unique_ptr<AvailabilityTracker> tracker_;
  /// Clock timestamp of the last availability refresh; the CAS in
  /// FinishQuery elects exactly one refresher per due interval.
  std::atomic<TimeMs> last_availability_refresh_ms_ = 0;
  Cumulative cumulative_;
};

}  // namespace colr

#endif  // COLR_CORE_ENGINE_H_
