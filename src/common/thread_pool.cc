#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace colr {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(std::max(0, num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_, SyncSite::kPoolQueue);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (workers_.empty()) {
    // Degenerate pool: run inline so submitted work is never lost.
    fn();
    return;
  }
  {
    MutexLock lock(mutex_, SyncSite::kPoolQueue);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      // The wait loop is open-coded (rather than a predicate lambda)
      // so the guarded reads of stop_/queue_ stay inside this
      // function's analyzed scope, where the MutexLock proves mutex_
      // is held.
      MutexLock lock(mutex_, SyncSite::kPoolQueue);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Helpers submitted to the pool
/// hold it via shared_ptr so a helper that is dequeued after the call
/// already finished finds an exhausted counter and exits immediately.
struct ParallelForState {
  std::function<void(size_t, size_t)> fn;
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> done_chunks{0};
  Mutex mutex{SyncSite::kPoolDone};
  std::condition_variable_any done_cv;

  /// Claims and runs chunks until the counter is exhausted.
  void Drain() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * grain;
      const size_t end = std::min(n, begin + grain);
      fn(begin, end);
      if (done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        MutexLock lock(mutex, SyncSite::kPoolDone);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<size_t>(1, grain);
  const size_t num_chunks = (n + grain - 1) / grain;
  if (workers_.empty() || num_chunks == 1) {
    for (size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->fn = fn;
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;

  const size_t helpers =
      std::min(workers_.size(), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([state] { state->Drain(); });
  }

  // The caller drains the same counter: even if every worker is busy
  // (or blocked in its own ParallelFor), this loop alone completes
  // all chunks.
  state->Drain();

  MutexLock lock(state->mutex, SyncSite::kPoolDone);
  while (state->done_chunks.load(std::memory_order_acquire) !=
         state->num_chunks) {
    state->done_cv.wait(state->mutex);
  }
}

}  // namespace colr
