#include "common/deadlock.h"

#if COLR_DEADLOCK_CHECK

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace colr::deadlock_internal {
namespace {

// Deep lock nestings are a design smell long before this bound; the
// real code peaks at 4 (epoch → shard → root → node).
constexpr int kMaxHeld = 32;

struct HeldStack {
  int16_t sites[kMaxHeld];
  int depth = 0;
};
thread_local HeldStack t_held;

// The acquired-after graph. `closure[s]` is the bitmask of sites
// reachable from s (excluding s itself) via declared edges plus every
// runtime-observed edge admitted in report mode; guarded by g_mu. The
// detector's own mutex must be a raw std::mutex — a ranked lock here
// would recurse into the hooks.
std::mutex g_mu;
uint32_t g_closure[kNumSyncSites];
bool g_closure_init = false;

// Fast path: edges already validated as declared. One relaxed load per
// (held, acquired) pair after the first acquisition.
std::atomic<uint32_t> g_validated[kNumSyncSites];
// Report mode: edges already complained about (once per edge).
uint32_t g_reported[kNumSyncSites];

uint32_t Bit(int site) { return uint32_t{1} << site; }

/// COLR_DEADLOCK_REPORT=1: print each bad edge once and keep going
/// (feeding observed edges into the closure) instead of aborting —
/// survey mode for triaging a branch with several violations.
bool ReportOnly() {
  static const bool report = [] {
    const char* env = std::getenv("COLR_DEADLOCK_REPORT");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return report;
}

void InitClosureLocked() {
  for (const LockOrderEdge& e : kLockOrderEdges) {
    g_closure[static_cast<int>(e.held)] |= Bit(static_cast<int>(e.acquired));
  }
  // Floyd–Warshall over bitmasks: if k is reachable from i, fold in
  // everything reachable from k. 32x32 bits — trivial at init.
  for (int k = 0; k < kNumSyncSites; ++k) {
    for (int i = 0; i < kNumSyncSites; ++i) {
      if (g_closure[i] & Bit(k)) g_closure[i] |= g_closure[k];
    }
  }
  g_closure_init = true;
}

/// Admit an observed (report-mode) edge and restore transitivity
/// incrementally: everything that reaches `held` now also reaches
/// `acquired` and its successors.
void AddEdgeLocked(int held, int acquired) {
  const uint32_t grows = Bit(acquired) | g_closure[acquired];
  g_closure[held] |= grows;
  for (int i = 0; i < kNumSyncSites; ++i) {
    if (g_closure[i] & Bit(held)) g_closure[i] |= grows;
  }
}

void PrintHeldStack(const HeldStack& held) {
  std::fprintf(stderr, "  held stack (outermost first):");
  for (int i = 0; i < held.depth && i < kMaxHeld; ++i) {
    const SyncSite s = static_cast<SyncSite>(held.sites[i]);
    std::fprintf(stderr, "%s %s(rank %d)", i == 0 ? "" : " ->",
                 SyncSiteName(s), LockRankOf(s));
  }
  std::fprintf(stderr, "\n");
}

void PrintViolation(const char* kind, SyncSite held_site, SyncSite acquired,
                    const HeldStack& held) {
  std::fprintf(stderr, "colr deadlock detector: %s\n", kind);
  std::fprintf(stderr, "  acquiring: %s (rank %d)\n", SyncSiteName(acquired),
               LockRankOf(acquired));
  std::fprintf(stderr, "  while holding: %s (rank %d)\n",
               SyncSiteName(held_site), LockRankOf(held_site));
  PrintHeldStack(held);
  std::fprintf(stderr,
               "  fix: acquire in declared rank order, or declare the edge "
               "in src/common/lock_order.inc (scripts/lint.py lock-order "
               "checks the same table statically)\n");
}

/// Slow path: the (held_site -> acquired) pair has not been validated.
/// Classify it against the closure; abort (or report) on violation.
void ValidateEdgeSlow(int held_site, int acquired, const HeldStack& held) {
  std::lock_guard<std::mutex> guard(g_mu);
  if (!g_closure_init) InitClosureLocked();
  const SyncSite h = static_cast<SyncSite>(held_site);
  const SyncSite a = static_cast<SyncSite>(acquired);
  if (LockOrderEdgeDeclared(h, a)) {
    g_validated[held_site].fetch_or(Bit(acquired), std::memory_order_relaxed);
    return;
  }
  const bool recursive = held_site == acquired;
  // A cycle iff the acquired site already reaches the held one.
  const bool inversion =
      recursive || ((g_closure[acquired] & Bit(held_site)) != 0);
  const char* kind = recursive ? "recursive acquisition of one site"
                     : inversion
                         ? "lock-order inversion (cycle in acquired-after "
                           "graph)"
                         : "undeclared acquired-after edge";
  if (!ReportOnly()) {
    PrintViolation(kind, h, a, held);
    std::abort();
  }
  if ((g_reported[held_site] & Bit(acquired)) == 0) {
    g_reported[held_site] |= Bit(acquired);
    PrintViolation(kind, h, a, held);
  }
  // Keep survey mode honest: an acyclic observed edge joins the
  // closure so a later reverse nesting is classified as an inversion,
  // not merely another undeclared edge. Cyclic edges are not admitted
  // (the closure must stay a partial order).
  if (!inversion) {
    AddEdgeLocked(held_site, acquired);
    g_validated[held_site].fetch_or(Bit(acquired), std::memory_order_relaxed);
  }
}

}  // namespace

void OnAcquire(SyncSite site) {
  const int s = static_cast<int>(site);
  HeldStack& held = t_held;
  for (int i = 0; i < held.depth; ++i) {
    const int h = held.sites[i];
    if (g_validated[h].load(std::memory_order_relaxed) & Bit(s)) continue;
    ValidateEdgeSlow(h, s, held);
  }
  if (held.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "colr deadlock detector: held-lock stack overflow "
                 "(%d sites) acquiring %s\n",
                 held.depth, SyncSiteName(site));
    PrintHeldStack(held);
    std::abort();
  }
  held.sites[held.depth++] = static_cast<int16_t>(s);
}

void OnRelease(SyncSite site) {
  const int16_t s = static_cast<int16_t>(site);
  HeldStack& held = t_held;
  // Locks are almost always released LIFO; scan from the top for the
  // exceptions (e.g. guards to adjacent scopes).
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.sites[i] != s) continue;
    for (int j = i; j + 1 < held.depth; ++j) held.sites[j] = held.sites[j + 1];
    --held.depth;
    return;
  }
  std::fprintf(stderr,
               "colr deadlock detector: release of %s with no matching "
               "acquire on this thread\n",
               SyncSiteName(site));
  PrintHeldStack(held);
  std::abort();
}

void DieSiteMismatch(SyncSite constructed, SyncSite named) {
  std::fprintf(stderr,
               "colr deadlock detector: guard names site %s but the lock "
               "was constructed as %s — the guard is lying to the static "
               "lock-order lint\n",
               SyncSiteName(named), SyncSiteName(constructed));
  std::abort();
}

int HeldDepth() { return t_held.depth; }

}  // namespace colr::deadlock_internal

#endif  // COLR_DEADLOCK_CHECK
