#ifndef COLR_COMMON_THREAD_POOL_H_
#define COLR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "common/thread_annotations.h"

namespace colr {

/// Fixed-size worker pool for the portal's concurrent query serving
/// and for parallel probe batches inside SensorNetwork.
///
/// ParallelFor is the workhorse and is deliberately *caller-
/// participating*: the calling thread drains the chunk counter itself
/// while idle pool workers help. That makes nested use safe — a pool
/// worker executing a portal query may call ParallelFor again from
/// inside SensorNetwork::ProbeBatch without risking deadlock, because
/// progress never depends on another pool thread becoming free. It
/// also means `ThreadPool(0)` is a valid degenerate pool where every
/// ParallelFor simply runs inline on the caller, which is how the
/// 1-thread baseline of bench/concurrent_portal.cc is measured.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: no workers, all work
  /// runs on the calling thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution by a pool worker.
  void Submit(std::function<void()> fn);

  /// Runs fn(begin, end) over consecutive chunks of [0, n) with the
  /// given grain size, returning when all of [0, n) has been
  /// processed. The caller participates; up to size() workers help.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  Mutex mutex_{SyncSite::kPoolQueue};
  /// _any variant: it waits on the annotated Mutex capability directly
  /// (std::condition_variable is hard-wired to std::mutex, which the
  /// thread-safety analysis cannot see).
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ COLR_GUARDED_BY(mutex_);
  bool stop_ COLR_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace colr

#endif  // COLR_COMMON_THREAD_POOL_H_
