#ifndef COLR_COMMON_THREAD_ANNOTATIONS_H_
#define COLR_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis macros (DESIGN.md §6 "Static lock
// contracts"). The locking protocol of the engine — which capability
// guards which data, which mode (shared/exclusive) a function needs,
// which functions must *not* be entered while holding a latch — is
// written into the code with these annotations and machine-checked by
// `clang -Wthread-safety` (promoted to an error by the static-analysis
// leg of scripts/check.sh). On compilers without the analysis (GCC)
// every macro expands to nothing, so annotated code stays portable.
//
// Naming follows the modern capability-based attribute spellings
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   COLR_CAPABILITY(name)     — a class that is a lockable capability
//   COLR_SCOPED_CAPABILITY    — an RAII guard acquiring on construction
//   COLR_GUARDED_BY(mu)       — data readable with `mu` held shared,
//                               writable with `mu` held exclusive
//   COLR_PT_GUARDED_BY(mu)    — same, for the pointee of a pointer
//   COLR_REQUIRES(mu)         — callers must hold `mu` exclusive
//   COLR_REQUIRES_SHARED(mu)  — callers must hold `mu` at least shared
//   COLR_ACQUIRE / _SHARED    — the function acquires `mu` (not held on
//                               entry, held on exit)
//   COLR_RELEASE / _SHARED / _GENERIC — the function releases `mu`
//   COLR_TRY_ACQUIRE(b, mu)   — acquires `mu` iff the function returns b
//   COLR_EXCLUDES(mu)         — callers must NOT hold `mu` (deadlock
//                               contract for non-reentrant latches)
//   COLR_ASSERT_CAPABILITY(mu)— runtime assertion that `mu` is held
//   COLR_RETURN_CAPABILITY(mu)— the function returns a reference to `mu`
//   COLR_NO_THREAD_SAFETY_ANALYSIS — opt a function body out (used only
//                               where aliasing defeats the analysis;
//                               every use must say why in a comment)
//
// Define COLR_DISABLE_THREAD_ANNOTATIONS to compile the annotations
// out under Clang too (e.g. to bisect an analysis false positive).

#if defined(__clang__) && !defined(COLR_DISABLE_THREAD_ANNOTATIONS)
#define COLR_THREAD_ANNOTATION_IMPL_(x) __attribute__((x))
#else
#define COLR_THREAD_ANNOTATION_IMPL_(x)
#endif

#define COLR_CAPABILITY(x) COLR_THREAD_ANNOTATION_IMPL_(capability(x))
#define COLR_SCOPED_CAPABILITY COLR_THREAD_ANNOTATION_IMPL_(scoped_lockable)
#define COLR_GUARDED_BY(x) COLR_THREAD_ANNOTATION_IMPL_(guarded_by(x))
#define COLR_PT_GUARDED_BY(x) COLR_THREAD_ANNOTATION_IMPL_(pt_guarded_by(x))
#define COLR_ACQUIRED_BEFORE(...) \
  COLR_THREAD_ANNOTATION_IMPL_(acquired_before(__VA_ARGS__))
#define COLR_ACQUIRED_AFTER(...) \
  COLR_THREAD_ANNOTATION_IMPL_(acquired_after(__VA_ARGS__))
#define COLR_REQUIRES(...) \
  COLR_THREAD_ANNOTATION_IMPL_(requires_capability(__VA_ARGS__))
#define COLR_REQUIRES_SHARED(...) \
  COLR_THREAD_ANNOTATION_IMPL_(requires_shared_capability(__VA_ARGS__))
#define COLR_ACQUIRE(...) \
  COLR_THREAD_ANNOTATION_IMPL_(acquire_capability(__VA_ARGS__))
#define COLR_ACQUIRE_SHARED(...) \
  COLR_THREAD_ANNOTATION_IMPL_(acquire_shared_capability(__VA_ARGS__))
#define COLR_RELEASE(...) \
  COLR_THREAD_ANNOTATION_IMPL_(release_capability(__VA_ARGS__))
#define COLR_RELEASE_SHARED(...) \
  COLR_THREAD_ANNOTATION_IMPL_(release_shared_capability(__VA_ARGS__))
#define COLR_RELEASE_GENERIC(...) \
  COLR_THREAD_ANNOTATION_IMPL_(release_generic_capability(__VA_ARGS__))
#define COLR_TRY_ACQUIRE(...) \
  COLR_THREAD_ANNOTATION_IMPL_(try_acquire_capability(__VA_ARGS__))
#define COLR_TRY_ACQUIRE_SHARED(...) \
  COLR_THREAD_ANNOTATION_IMPL_(try_acquire_shared_capability(__VA_ARGS__))
#define COLR_EXCLUDES(...) \
  COLR_THREAD_ANNOTATION_IMPL_(locks_excluded(__VA_ARGS__))
#define COLR_ASSERT_CAPABILITY(x) \
  COLR_THREAD_ANNOTATION_IMPL_(assert_capability(x))
#define COLR_ASSERT_SHARED_CAPABILITY(x) \
  COLR_THREAD_ANNOTATION_IMPL_(assert_shared_capability(x))
#define COLR_RETURN_CAPABILITY(x) \
  COLR_THREAD_ANNOTATION_IMPL_(lock_returned(x))
#define COLR_NO_THREAD_SAFETY_ANALYSIS \
  COLR_THREAD_ANNOTATION_IMPL_(no_thread_safety_analysis)

#endif  // COLR_COMMON_THREAD_ANNOTATIONS_H_
