#include "common/sync_stats.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "common/sync.h"

namespace colr {

namespace sync_internal {
namespace {
bool EnvEnabled() {
  const char* v = std::getenv("COLR_SYNC_STATS");
  // Any non-empty value other than "0" enables (matches the usual
  // FLAG=1 convention while letting FLAG=0 explicitly disable).
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}
}  // namespace
std::atomic<bool> g_sync_stats_enabled{EnvEnabled()};
}  // namespace sync_internal

// SyncSiteName moved to common/lock_rank.h: generated from
// lock_order.inc together with the rank tables.

int SyncWaitBucket(int64_t wait_ns) {
  if (wait_ns <= 0) return 0;
  // Bucket b >= 1 holds waits in [2^(b-1), 2^b - 1] ns.
  const int width = std::bit_width(static_cast<uint64_t>(wait_ns));
  return width < kSyncWaitBuckets ? width : kSyncWaitBuckets - 1;
}

int64_t SyncStatsSnapshot::TotalWaitNs() const {
  int64_t total = 0;
  for (const SyncSiteStats& s : sites) total += s.total_wait_ns;
  return total;
}

int SyncStatsSnapshot::HottestSite() const {
  int best = -1;
  for (int i = 0; i < kNumSyncSites; ++i) {
    if (sites[i].acquisitions == 0) continue;
    if (best < 0) {
      best = i;
      continue;
    }
    const SyncSiteStats& a = sites[i];
    const SyncSiteStats& b = sites[best];
    if (std::tie(a.total_wait_ns, a.contended, a.acquisitions) >
        std::tie(b.total_wait_ns, b.contended, b.acquisitions)) {
      best = i;
    }
  }
  return best;
}

double SyncStatsSnapshot::ContentionShare(SyncSite site) const {
  const int64_t total = TotalWaitNs();
  if (total <= 0) return 0.0;
  return static_cast<double>(sites[static_cast<size_t>(site)].total_wait_ns) /
         static_cast<double>(total);
}

SyncStatsSnapshot SyncStatsDelta(const SyncStatsSnapshot& after,
                                 const SyncStatsSnapshot& before) {
  SyncStatsSnapshot delta;
  delta.enabled = after.enabled;
  for (int i = 0; i < kNumSyncSites; ++i) {
    const SyncSiteStats& a = after.sites[i];
    const SyncSiteStats& b = before.sites[i];
    SyncSiteStats& d = delta.sites[i];
    d.acquisitions = a.acquisitions - b.acquisitions;
    d.contended = a.contended - b.contended;
    d.total_wait_ns = a.total_wait_ns - b.total_wait_ns;
    // The per-interval max is not recoverable from two cumulative
    // snapshots; report the process-lifetime max (monotone, and exact
    // for benches that start from a fresh process).
    d.max_wait_ns = a.max_wait_ns;
    for (int h = 0; h < kSyncWaitBuckets; ++h) {
      d.wait_hist[h] = a.wait_hist[h] - b.wait_hist[h];
    }
  }
  return delta;
}

// ---- Registry -----------------------------------------------------------

struct SyncStatsRegistry::ThreadBlock {
  struct Site {
    std::atomic<int64_t> acquisitions{0};
    std::atomic<int64_t> contended{0};
    std::atomic<int64_t> total_wait_ns{0};
    std::atomic<int64_t> max_wait_ns{0};
    std::atomic<int64_t> wait_hist[kSyncWaitBuckets]{};
  };
  Site sites[kNumSyncSites];
};

struct SyncStatsRegistry::Impl {
  // Ranked last in the lock-order DAG: a thread's first record at an
  // instrumented site happens while that site's lock is held, so
  // every instrumented site declares an edge to kStatsRegistry.
  mutable Mutex mu{SyncSite::kStatsRegistry};
  /// Blocks of live threads (owner-written relaxed atomics; readable
  /// under mu while the owners keep recording).
  std::vector<ThreadBlock*> live COLR_GUARDED_BY(mu);
  /// Flushed totals of exited threads.
  SyncSiteStats retired[kNumSyncSites] COLR_GUARDED_BY(mu);
};

/// Per-thread RAII holder: keeps the thread's block id and flushes it
/// into the registry's retired accumulator when the thread exits.
class SyncStatsRegistry::ThreadHolder {
 public:
  ThreadHolder(SyncStatsRegistry* reg, ThreadBlock* block)
      : reg_(reg), block_(block) {}
  ~ThreadHolder() { reg_->Retire(block_); }
  ThreadBlock* block() const { return block_; }

 private:
  SyncStatsRegistry* reg_;
  ThreadBlock* block_;
};

SyncStatsRegistry::SyncStatsRegistry() : impl_(new Impl) {}

SyncStatsRegistry& SyncStatsRegistry::Instance() {
  // Leaked: thread-local holders flush into it at thread exit, which
  // can happen after static destruction would have run.
  static SyncStatsRegistry* registry = new SyncStatsRegistry;
  return *registry;
}

void SyncStatsRegistry::Enable() {
  sync_internal::g_sync_stats_enabled.store(true, std::memory_order_relaxed);
}

SyncStatsRegistry::ThreadBlock* SyncStatsRegistry::BlockForThisThread() {
  thread_local ThreadHolder holder(this, [this] {
    ThreadBlock* block = new ThreadBlock;
    MutexLock lock(impl_->mu, SyncSite::kStatsRegistry);
    impl_->live.push_back(block);
    return block;
  }());
  return holder.block();
}

void SyncStatsRegistry::Retire(ThreadBlock* block) {
  MutexLock lock(impl_->mu, SyncSite::kStatsRegistry);
  AccumulateBlock(impl_->retired, *block);
  auto& live = impl_->live;
  live.erase(std::remove(live.begin(), live.end(), block), live.end());
  delete block;
}

SyncStatsSnapshot SyncStatsRegistry::Snapshot() const {
  SyncStatsSnapshot snap;
  snap.enabled = SyncStatsEnabled();
  MutexLock lock(impl_->mu, SyncSite::kStatsRegistry);
  for (int i = 0; i < kNumSyncSites; ++i) snap.sites[i] = impl_->retired[i];
  for (const ThreadBlock* block : impl_->live) {
    AccumulateBlock(snap.sites.data(), *block);
  }
  return snap;
}

void SyncStatsRegistry::AccumulateBlock(SyncSiteStats* out,
                                        const ThreadBlock& block) {
  for (int i = 0; i < kNumSyncSites; ++i) {
    const auto& s = block.sites[i];
    SyncSiteStats& o = out[i];
    o.acquisitions += s.acquisitions.load(std::memory_order_relaxed);
    o.contended += s.contended.load(std::memory_order_relaxed);
    o.total_wait_ns += s.total_wait_ns.load(std::memory_order_relaxed);
    o.max_wait_ns = std::max(o.max_wait_ns,
                             s.max_wait_ns.load(std::memory_order_relaxed));
    for (int h = 0; h < kSyncWaitBuckets; ++h) {
      o.wait_hist[h] += s.wait_hist[h].load(std::memory_order_relaxed);
    }
  }
}

void SyncStatsRecord(SyncSite site, bool contended, int64_t wait_ns) {
  SyncStatsRegistry::ThreadBlock* block =
      SyncStatsRegistry::Instance().BlockForThisThread();
  auto& s = block->sites[static_cast<size_t>(site)];
  // Owner-only writes; relaxed atomics so concurrent Snapshot() reads
  // stay TSan-clean.
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  s.wait_hist[SyncWaitBucket(wait_ns)].fetch_add(1, std::memory_order_relaxed);
  if (contended) {
    s.contended.fetch_add(1, std::memory_order_relaxed);
    s.total_wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
    if (wait_ns > s.max_wait_ns.load(std::memory_order_relaxed)) {
      s.max_wait_ns.store(wait_ns, std::memory_order_relaxed);
    }
  }
}

}  // namespace colr
