#ifndef COLR_COMMON_STATUS_H_
#define COLR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace colr {

// Error-handling idiom for the whole library: operations that can fail
// return a Status (or Result<T> for value-producing operations) instead
// of throwing. Mirrors the RocksDB/Arrow convention.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kUnavailable,
  kInternal,
};

/// Lightweight status object carrying a code and an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string msg_;
};

/// Result<T> holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // Implicit construction from values and statuses keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : var_(std::move(value)) {}        // NOLINT
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    // An OK status carries no value; normalize to an Internal error so
    // the invariant "ok() implies has value" always holds.
    if (std::get<Status>(var_).ok()) {
      var_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> var_;
};

// Propagate a non-OK Status from an expression.
#define COLR_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::colr::Status _colr_status = (expr);           \
    if (!_colr_status.ok()) return _colr_status;    \
  } while (0)

// Evaluate a Result-returning expression and bind the value, or return
// its error Status.
#define COLR_MACRO_CONCAT_INNER(a, b) a##b
#define COLR_MACRO_CONCAT(a, b) COLR_MACRO_CONCAT_INNER(a, b)
#define COLR_ASSIGN_OR_RETURN(lhs, expr) \
  COLR_ASSIGN_OR_RETURN_IMPL(COLR_MACRO_CONCAT(_colr_result_, __LINE__), \
                             lhs, expr)
#define COLR_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                               \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

}  // namespace colr

#endif  // COLR_COMMON_STATUS_H_
