#include "common/rng.h"

#include <numeric>
#include <unordered_map>

namespace colr {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  if (k >= n) {
    std::vector<uint64_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    for (uint64_t i = n; i > 1; --i) {
      std::swap(all[i - 1], all[UniformInt(i)]);
    }
    return all;
  }
  // Sparse Fisher-Yates: only materialize touched positions, so cost is
  // O(k) regardless of n. This matters when sampling a handful of
  // sensors from a node with hundreds of thousands of descendants.
  std::unordered_map<uint64_t, uint64_t> swapped;
  swapped.reserve(k * 2);
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t i = 0; i < k; ++i) {
    const uint64_t j = i + UniformInt(n - i);
    uint64_t vi = i, vj = j;
    if (auto it = swapped.find(i); it != swapped.end()) vi = it->second;
    if (auto it = swapped.find(j); it != swapped.end()) vj = it->second;
    out.push_back(vj);
    swapped[j] = vi;
  }
  return out;
}

}  // namespace colr
