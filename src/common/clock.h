#ifndef COLR_COMMON_CLOCK_H_
#define COLR_COMMON_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace colr {

/// Time is represented as milliseconds on a virtual axis. All of
/// COLR-Tree's temporal machinery (expiry times, slot boundaries,
/// freshness bounds) runs on this axis so experiments are
/// deterministic and can replay a day of portal traffic in seconds.
using TimeMs = int64_t;

constexpr TimeMs kMsPerSecond = 1000;
constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;
constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;

/// Clock interface. The engine only ever asks "what time is it now".
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs NowMs() const = 0;
};

/// Deterministic simulated clock, manually advanced by workload
/// replayers and tests. The time word is atomic so a replay driver can
/// advance it while query threads read it (time only moves forward;
/// see SetMs).
class SimClock : public Clock {
 public:
  explicit SimClock(TimeMs start = 0) : now_(start) {}

  TimeMs NowMs() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceMs(TimeMs delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void SetMs(TimeMs t) {
    TimeMs cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<TimeMs> now_;
};

/// Moving replay clock: maps trace time onto real wall time at a
/// configurable speedup, so a multi-hour query trace replays in
/// seconds while the window-maintenance machinery (rolls, expunges,
/// availability refreshes) runs against continuously advancing time —
/// unlike SimClock, which only moves when a driver pushes it.
///
///   trace_now = trace_start + elapsed_wall_ms * speedup
///
/// Restart() re-anchors trace_start to the current wall instant; call
/// it once before spawning replay threads (thread creation provides
/// the happens-before edge). NowMs() is const, lock-free and safe to
/// call from any number of threads, and monotone because the
/// underlying steady_clock is.
class ReplayClock : public Clock {
 public:
  explicit ReplayClock(TimeMs trace_start = 0, double speedup = 1.0)
      : trace_start_(trace_start),
        speedup_(speedup > 0.0 ? speedup : 1.0),
        wall_start_(std::chrono::steady_clock::now()) {}

  TimeMs NowMs() const override {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start_)
            .count();
    return trace_start_ + static_cast<TimeMs>(wall_ms * speedup_);
  }

  TimeMs trace_start() const { return trace_start_; }
  double speedup() const { return speedup_; }

  /// Re-anchors the clock: trace time `trace_start` corresponds to
  /// "now" on the wall; `speedup` > 0 also replaces the rate. Not
  /// thread-safe; call before replay threads start.
  void Restart(TimeMs trace_start, double speedup = 0.0) {
    trace_start_ = trace_start;
    if (speedup > 0.0) speedup_ = speedup;
    wall_start_ = std::chrono::steady_clock::now();
  }

  /// Wall milliseconds until the replay clock reaches trace time `t`
  /// (<= 0 when `t` is already in the past). What a paced replay
  /// driver sleeps between trace events.
  double WallMsUntil(TimeMs t) const {
    return static_cast<double>(t - NowMs()) / speedup_;
  }

 private:
  TimeMs trace_start_;
  double speedup_;
  std::chrono::steady_clock::time_point wall_start_;
};

/// Real wall clock (monotonic), used by the latency instrumentation.
class WallClock : public Clock {
 public:
  TimeMs NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Nanosecond stopwatch for measuring processing latency.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace colr

#endif  // COLR_COMMON_CLOCK_H_
