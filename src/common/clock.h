#ifndef COLR_COMMON_CLOCK_H_
#define COLR_COMMON_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace colr {

/// Time is represented as milliseconds on a virtual axis. All of
/// COLR-Tree's temporal machinery (expiry times, slot boundaries,
/// freshness bounds) runs on this axis so experiments are
/// deterministic and can replay a day of portal traffic in seconds.
using TimeMs = int64_t;

constexpr TimeMs kMsPerSecond = 1000;
constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;
constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;

/// Clock interface. The engine only ever asks "what time is it now".
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMs NowMs() const = 0;
};

/// Deterministic simulated clock, manually advanced by workload
/// replayers and tests. The time word is atomic so a replay driver can
/// advance it while query threads read it (time only moves forward;
/// see SetMs).
class SimClock : public Clock {
 public:
  explicit SimClock(TimeMs start = 0) : now_(start) {}

  TimeMs NowMs() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceMs(TimeMs delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void SetMs(TimeMs t) {
    TimeMs cur = now_.load(std::memory_order_relaxed);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<TimeMs> now_;
};

/// Real wall clock (monotonic), used by the latency instrumentation.
class WallClock : public Clock {
 public:
  TimeMs NowMs() const override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Nanosecond stopwatch for measuring processing latency.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace colr

#endif  // COLR_COMMON_CLOCK_H_
