#ifndef COLR_COMMON_SYNC_STATS_H_
#define COLR_COMMON_SYNC_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace colr {

/// Contention instrumentation for the lock hierarchy in sync.h
/// (DESIGN.md §6 "Sync-stats model"). Every named lock *site* — a
/// (lock, acquisition-mode) pair in ColrTree's write protocol — gets
/// per-site counters: acquisitions, contended acquisitions (the fast
/// try_lock missed), total and max wait nanoseconds, plus a coarse
/// log2 wait histogram. The counters answer the question qps alone
/// cannot: *which* lock burns the time when writer scaling flattens.
///
/// Cost model: recording is off by default and the guards below
/// compile down to a relaxed load + branch around a plain lock(), so
/// the disabled path is indistinguishable from using std::lock_guard
/// directly (the overhead smoke check in scripts/check.sh pins this).
/// Enable per process via ColrTree::Options::sync_stats or the
/// COLR_SYNC_STATS=1 environment variable. Defining COLR_NO_SYNC_STATS
/// removes even the branch.
///
/// Collection protocol: each recording thread owns a registered block
/// of per-site accumulators and is the only writer to it (relaxed
/// atomics, so snapshot readers race benignly and TSan-cleanly).
/// Snapshot() sums the live blocks plus an accumulator holding the
/// blocks of exited threads (each thread's block is flushed into the
/// registry's retired accumulator by its thread-local holder's
/// destructor). Totals are exact whenever no thread is mid-record —
/// in particular at the quiescent points where benches and
/// MaintenanceSnapshot() read them.

// SyncSite itself (plus kNumSyncSites and SyncSiteName) moved to
// common/lock_rank.h: the sites double as lock ranks for the deadlock
// contract and are generated from lock_order.inc, the single source
// of truth. This header keeps re-exporting them via that include.

/// Log2 wait-time bucket: 0 for uncontended acquisitions (wait 0),
/// otherwise 1 + floor(log2(wait_ns)) clamped to the last bucket —
/// so the buckets of one site always sum to its acquisition count.
inline constexpr int kSyncWaitBuckets = 32;
int SyncWaitBucket(int64_t wait_ns);

/// Plain-value per-site counters (snapshot form).
struct SyncSiteStats {
  int64_t acquisitions = 0;
  int64_t contended = 0;
  int64_t total_wait_ns = 0;
  int64_t max_wait_ns = 0;
  std::array<int64_t, kSyncWaitBuckets> wait_hist{};
};

/// Point-in-time view of every site, readable while threads record.
struct SyncStatsSnapshot {
  /// Whether recording was enabled when the snapshot was taken. A
  /// disabled snapshot is all zeros and JSON emitters skip it.
  bool enabled = false;
  std::array<SyncSiteStats, kNumSyncSites> sites{};

  int64_t TotalWaitNs() const;
  /// Site burning the most wait time (ties and all-zero waits fall
  /// back to contended count, then acquisitions). -1 if no site was
  /// ever acquired.
  int HottestSite() const;
  /// This site's share of the total wait time, in [0, 1] (0 when no
  /// site waited at all).
  double ContentionShare(SyncSite site) const;
};

/// Per-site difference after - before (counters are cumulative per
/// process; benches and MaintenanceSnapshot() report per-run deltas).
SyncStatsSnapshot SyncStatsDelta(const SyncStatsSnapshot& after,
                                 const SyncStatsSnapshot& before);

namespace sync_internal {
/// Process-wide enable flag; initialized from COLR_SYNC_STATS at
/// startup, latched on by SyncStatsRegistry::Enable().
extern std::atomic<bool> g_sync_stats_enabled;
}  // namespace sync_internal

/// Hot-path guard read by every instrumented lock site.
inline bool SyncStatsEnabled() {
#ifdef COLR_NO_SYNC_STATS
  return false;
#else
  return sync_internal::g_sync_stats_enabled.load(std::memory_order_relaxed);
#endif
}

/// Records one acquisition into the calling thread's block (registers
/// the block on first use). Only call when SyncStatsEnabled().
void SyncStatsRecord(SyncSite site, bool contended, int64_t wait_ns);

/// Process-wide registry of per-thread accumulator blocks.
class SyncStatsRegistry {
 public:
  /// The singleton. Intentionally leaked so thread-local holders
  /// flushing at thread exit never outlive it.
  static SyncStatsRegistry& Instance();

  /// Turns recording on for the whole process (sticky; there is no
  /// disable — counters are cumulative and consumers read deltas).
  static void Enable();

  /// Sums live thread blocks + retired accumulator.
  SyncStatsSnapshot Snapshot() const;

 private:
  friend void SyncStatsRecord(SyncSite, bool, int64_t);
  struct ThreadBlock;
  class ThreadHolder;
  struct Impl;

  SyncStatsRegistry();
  ThreadBlock* BlockForThisThread();
  void Retire(ThreadBlock* block);
  static void AccumulateBlock(SyncSiteStats* out, const ThreadBlock& block);

  Impl* const impl_;  // leaked with the registry
};

/// RAII guard: lock() with contention timing. Disabled → exactly
/// std::lock_guard. Enabled → try_lock fast path records an
/// uncontended acquisition; on miss, times the blocking lock() with
/// steady_clock and records the wait. Works with any annotated
/// Lockable capability (SpinMutex, EpochLatch exclusive side,
/// SharedMutex unique side). A scoped capability: under
/// -Wthread-safety the guarded scope counts as holding `mu`
/// exclusively.
template <typename Mutex>
class COLR_SCOPED_CAPABILITY SyncTimedLock {
 public:
  SyncTimedLock(Mutex& mu, SyncSite site) COLR_ACQUIRE(mu) : mu_(mu) {
    mu_.AssertRankIs(site);  // the named site must be the lock's rank
    if (!SyncStatsEnabled()) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      SyncStatsRecord(site, false, 0);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    const auto wait = std::chrono::steady_clock::now() - start;
    SyncStatsRecord(
        site, true,
        std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count());
  }
  ~SyncTimedLock() COLR_RELEASE() { mu_.unlock(); }

  SyncTimedLock(const SyncTimedLock&) = delete;
  SyncTimedLock& operator=(const SyncTimedLock&) = delete;

 private:
  Mutex& mu_;
};

/// Shared-side counterpart for SharedLockable capabilities (EpochLatch
/// shared side, SharedMutex shared side).
template <typename Mutex>
class COLR_SCOPED_CAPABILITY SyncTimedSharedLock {
 public:
  SyncTimedSharedLock(Mutex& mu, SyncSite site) COLR_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.AssertRankIs(site);
    if (!SyncStatsEnabled()) {
      mu_.lock_shared();
      return;
    }
    if (mu_.try_lock_shared()) {
      SyncStatsRecord(site, false, 0);
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    mu_.lock_shared();
    const auto wait = std::chrono::steady_clock::now() - start;
    SyncStatsRecord(
        site, true,
        std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count());
  }
  ~SyncTimedSharedLock() COLR_RELEASE_SHARED() { mu_.unlock_shared(); }

  SyncTimedSharedLock(const SyncTimedSharedLock&) = delete;
  SyncTimedSharedLock& operator=(const SyncTimedSharedLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace colr

#endif  // COLR_COMMON_SYNC_STATS_H_
