#ifndef COLR_COMMON_RNG_H_
#define COLR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace colr {

/// Deterministic pseudo-random generator (xoshiro256++) with the
/// distributions the workload generators and sampling code need.
/// Deliberately self-contained: experiment reproducibility must not
/// depend on the standard library's unspecified distribution algorithms.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to expand the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (~n + 1) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    if (have_cached_gaussian_) {
      have_cached_gaussian_ = false;
      return mean + stddev * cached_gaussian_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  /// Exponential with given rate (lambda).
  double Exponential(double rate) {
    double u = 0.0;
    do {
      u = NextDouble();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
  }

  /// Zipf-distributed integer in [0, n) with exponent s, via inverse
  /// transform over precomputable CDF-free rejection (Devroye).
  uint64_t Zipf(uint64_t n, double s) {
    // Rejection-inversion sampling (works for s != 1 and s == 1).
    if (n <= 1) return 0;
    const double nd = static_cast<double>(n);
    auto h = [s](double x) {
      if (std::abs(s - 1.0) < 1e-12) return std::log(x);
      return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
    };
    auto h_inv = [s](double y) {
      if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
      return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
    };
    const double hx0 = h(0.5) - 1.0;
    const double hn = h(nd + 0.5);
    for (;;) {
      const double u = hx0 + NextDouble() * (hn - hx0);
      const double x = h_inv(u);
      const uint64_t k = static_cast<uint64_t>(
          std::min(std::max(std::floor(x + 0.5), 1.0), nd));
      const double kd = static_cast<double>(k);
      if (u >= h(kd + 0.5) - std::pow(kd, -s)) return k - 1;
    }
  }

  /// Fisher-Yates sample without replacement: k distinct indices from
  /// [0, n). If k >= n, returns all indices (shuffled).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace colr

#endif  // COLR_COMMON_RNG_H_
