#ifndef COLR_COMMON_LOCK_RANK_H_
#define COLR_COMMON_LOCK_RANK_H_

// Lock sites, ranks, and the declared acquired-after DAG — all
// expanded from src/common/lock_order.inc, the single source of truth
// shared with the runtime deadlock detector (common/deadlock.h) and
// the static `lock-order` lint rule (scripts/lint.py). DESIGN.md §10
// describes the contract; this header only materializes the tables.

#include <array>
#include <cstddef>
#include <cstdint>

namespace colr {

/// A named lock-acquisition site. Doubles as the key for sync-stats
/// contention counters (common/sync_stats.h) and as the lock's rank
/// identity for the deadlock detector. Enum order is append-only: the
/// bench JSON emitters index arrays by site value.
enum class SyncSite : int {
#define COLR_SYNC_SITE(enumerator, name, rank) enumerator,
#include "common/lock_order.inc"
};

inline constexpr int kNumSyncSites = 0
#define COLR_SYNC_SITE(enumerator, name, rank) +1
#include "common/lock_order.inc"
    ;

static_assert(kNumSyncSites <= 32,
              "edge bitmasks below (and the detector's) are uint32_t");

/// Rank of each site: a topological order of the declared DAG. Lower
/// ranks are taken first.
using LockRank = int;

inline constexpr std::array<LockRank, kNumSyncSites> kSyncSiteRanks = {
#define COLR_SYNC_SITE(enumerator, name, rank) rank,
#include "common/lock_order.inc"
};

inline constexpr std::array<const char*, kNumSyncSites> kSyncSiteNames = {
#define COLR_SYNC_SITE(enumerator, name, rank) name,
#include "common/lock_order.inc"
};

constexpr LockRank LockRankOf(SyncSite site) {
  return kSyncSiteRanks[static_cast<std::size_t>(site)];
}

/// Human-readable site name ("epoch_shared", ...); "unknown" for
/// out-of-range values so diagnostics never index out of bounds.
constexpr const char* SyncSiteName(SyncSite site) {
  const int i = static_cast<int>(site);
  return (i >= 0 && i < kNumSyncSites)
             ? kSyncSiteNames[static_cast<std::size_t>(i)]
             : "unknown";
}

/// One declared acquired-after edge: `acquired` may be taken while
/// `held` is held.
struct LockOrderEdge {
  SyncSite held;
  SyncSite acquired;
};

inline constexpr LockOrderEdge kLockOrderEdges[] = {
#define COLR_LOCK_ORDER_EDGE(held, acquired) \
  {SyncSite::held, SyncSite::acquired},
#include "common/lock_order.inc"
};

inline constexpr int kNumLockOrderEdges =
    sizeof(kLockOrderEdges) / sizeof(kLockOrderEdges[0]);

namespace lock_rank_internal {

constexpr std::array<uint32_t, kNumSyncSites> ComputeAllowed() {
  std::array<uint32_t, kNumSyncSites> allowed = {};
  for (const LockOrderEdge& e : kLockOrderEdges) {
    allowed[static_cast<std::size_t>(e.held)] |=
        uint32_t{1} << static_cast<int>(e.acquired);
  }
  return allowed;
}

/// Compile-time proof that the declared edges form a DAG: ranks are a
/// witness topological order, so strict monotonicity along every edge
/// rules out cycles (including self-edges).
constexpr bool EdgesRankMonotone() {
  for (const LockOrderEdge& e : kLockOrderEdges) {
    if (LockRankOf(e.held) >= LockRankOf(e.acquired)) return false;
  }
  return true;
}

}  // namespace lock_rank_internal

/// allowed[held] bit `acquired`: the edge is declared.
inline constexpr std::array<uint32_t, kNumSyncSites> kLockOrderAllowed =
    lock_rank_internal::ComputeAllowed();

static_assert(lock_rank_internal::EdgesRankMonotone(),
              "lock_order.inc declares an edge whose held rank is not "
              "strictly below the acquired rank — the declared order is "
              "not a DAG (or the ranks need renumbering)");

constexpr bool LockOrderEdgeDeclared(SyncSite held, SyncSite acquired) {
  return (kLockOrderAllowed[static_cast<std::size_t>(held)] >>
          static_cast<int>(acquired)) &
         1u;
}

}  // namespace colr

#endif  // COLR_COMMON_LOCK_RANK_H_
