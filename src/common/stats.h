#ifndef COLR_COMMON_STATS_H_
#define COLR_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace colr {

/// Streaming mean/variance accumulator (Welford). Used throughout the
/// benchmark harnesses to aggregate per-query metrics.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  void Merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) +
             other.mean_ * static_cast<double>(other.n_)) /
            total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over a value range; used for binning queries
/// by result-set size (Fig 3) and similar per-bin aggregations.
class BinnedStat {
 public:
  /// Creates `bins` geometric bins covering [lo, hi].
  BinnedStat(double lo, double hi, int bins)
      : lo_(lo), hi_(hi), stats_(bins) {}

  void Add(double bin_key, double value) {
    stats_[BinIndex(bin_key)].Add(value);
  }

  int BinIndex(double key) const {
    if (key <= lo_) return 0;
    if (key >= hi_) return static_cast<int>(stats_.size()) - 1;
    const double frac = std::log(key / lo_) / std::log(hi_ / lo_);
    int idx = static_cast<int>(frac * static_cast<double>(stats_.size()));
    return std::clamp(idx, 0, static_cast<int>(stats_.size()) - 1);
  }

  /// Geometric center of bin i (the representative x value).
  double BinCenter(int i) const {
    const double step =
        std::log(hi_ / lo_) / static_cast<double>(stats_.size());
    return lo_ * std::exp((i + 0.5) * step);
  }

  int num_bins() const { return static_cast<int>(stats_.size()); }
  const RunningStat& bin(int i) const { return stats_[i]; }

 private:
  double lo_;
  double hi_;
  std::vector<RunningStat> stats_;
};

}  // namespace colr

#endif  // COLR_COMMON_STATS_H_
