#ifndef COLR_COMMON_DEADLOCK_H_
#define COLR_COMMON_DEADLOCK_H_

// Runtime lock-order detector (DESIGN.md §10, layer 2 of the
// deadlock-freedom contract). Every ranked lock in common/sync.h
// carries a LockRankTag; under -DCOLR_DEADLOCK_CHECK=1 (CMake option
// COLR_DEADLOCK_CHECK, mirroring COLR_SANITIZE) each blocking acquire
// pushes its site onto a thread-local held stack and validates the
// acquired-after edge from every held site against the declared DAG in
// lock_order.inc — extended at runtime by a process-wide transitive
// closure, so an inversion aborts on the FIRST offending acquisition
// even if no interleaving ever deadlocks. Without the define the tag
// is an empty type and every hook is a no-op the compiler deletes
// ([[no_unique_address]] keeps the lock layouts unchanged).
//
// Failure modes (all abort with site names, ranks, and the held
// stack; COLR_DEADLOCK_REPORT=1 downgrades to report-once-per-edge):
//   - lock-order inversion: the acquired site can already reach a held
//     site in the declared-or-observed closure (a cycle).
//   - undeclared acquired-after edge: the nesting is acyclic but not
//     in lock_order.inc — declare it or fix the call site.
//   - recursive acquisition of one site.

#include <cstdint>

#include "common/lock_rank.h"

#ifndef COLR_DEADLOCK_CHECK
#define COLR_DEADLOCK_CHECK 0
#endif

// [[no_unique_address]] lets the disabled (empty) tag occupy no bytes
// inside the lock wrappers.
#define COLR_NO_UNIQUE_ADDRESS [[no_unique_address]]

namespace colr {

/// Whether this build compiled the detector in.
constexpr bool DeadlockCheckActive() { return COLR_DEADLOCK_CHECK != 0; }

#if COLR_DEADLOCK_CHECK

namespace deadlock_internal {
void OnAcquire(SyncSite site);
void OnRelease(SyncSite site);
[[noreturn]] void DieSiteMismatch(SyncSite constructed, SyncSite named);
/// Current thread's held-site count (ranked sites only) — test hook.
int HeldDepth();
}  // namespace deadlock_internal

/// The rank identity a lock carries. Default-constructed (unranked)
/// tags opt the lock out of checking — bench/test scratch locks.
class LockRankTag {
 public:
  constexpr LockRankTag() = default;
  constexpr explicit LockRankTag(SyncSite site)
      : site_(static_cast<int16_t>(site)) {}

  /// Hook before/after the underlying primitive. Acquire-side runs
  /// BEFORE blocking so the report fires instead of the deadlock.
  void OnAcquire() const {
    if (site_ >= 0) deadlock_internal::OnAcquire(static_cast<SyncSite>(site_));
  }
  void OnRelease() const {
    if (site_ >= 0) deadlock_internal::OnRelease(static_cast<SyncSite>(site_));
  }

  /// Guard constructors cross-check the SyncSite they were handed
  /// against the lock's constructed identity; a mismatch means the
  /// guard is lying to the static lint and aborts. Unranked locks
  /// (bench/test scratch) accept any site.
  void AssertMatches(SyncSite site) const {
    if (site_ >= 0 && site_ != static_cast<int16_t>(site)) {
      deadlock_internal::DieSiteMismatch(static_cast<SyncSite>(site_), site);
    }
  }

  /// Strict equality (no unranked pass) — for locks with two tags
  /// (EpochLatch) that accept a site if EITHER tag carries it.
  bool MatchesExactly(SyncSite site) const {
    return site_ == static_cast<int16_t>(site);
  }

 private:
  int16_t site_ = -1;
};

#else  // !COLR_DEADLOCK_CHECK

class LockRankTag {
 public:
  constexpr LockRankTag() = default;
  constexpr explicit LockRankTag(SyncSite /*site*/) {}
  void OnAcquire() const {}
  void OnRelease() const {}
  void AssertMatches(SyncSite /*site*/) const {}
  bool MatchesExactly(SyncSite /*site*/) const { return true; }
};

#endif  // COLR_DEADLOCK_CHECK

}  // namespace colr

#endif  // COLR_COMMON_DEADLOCK_H_
