#ifndef COLR_COMMON_SYNC_H_
#define COLR_COMMON_SYNC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/deadlock.h"
#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace colr {

// The lock primitives below are deliberately plain Lockable /
// SharedLockable types; contention observability lives one layer up in
// sync_stats.h (SyncTimedLock / SyncTimedSharedLock wrap any of them
// with per-site acquisition/wait counters that compile down to the
// plain lock when disabled). Instrumented call sites name a SyncSite;
// the primitives stay measurement-free so uninstrumented users pay
// nothing.
//
// Every primitive is an annotated Clang Thread Safety capability
// (thread_annotations.h), and these wrappers are the only lock
// vocabulary the engine uses: scripts/lint.py bans the raw std::
// mutex/lock types outside src/common/, so every lock site is (a)
// visible to the static analysis and (b) reachable by the sync-stats
// instrumentation layer.
//
// Each primitive additionally carries a LockRankTag (common/
// deadlock.h): construct it with the SyncSite it serves and every
// acquisition is checked against the lock-order DAG declared in
// lock_order.inc when the build arms COLR_DEADLOCK_CHECK. Default
// construction leaves the lock unranked (bench/test scratch locks) —
// the detector ignores it. The tag is an empty member in normal
// builds; the layouts below are unchanged.

/// Annotated drop-in for std::mutex. Exists because libstdc++'s
/// std::mutex carries no capability attributes, which would make every
/// COLR_GUARDED_BY contract on it vacuous under -Wthread-safety.
class COLR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(SyncSite site) : rank_(site) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // OnAcquire runs before the blocking call so an inversion aborts
  // with a report instead of deadlocking in mu_.lock().
  void lock() COLR_ACQUIRE() {
    rank_.OnAcquire();
    mu_.lock();
  }
  void unlock() COLR_RELEASE() {
    rank_.OnRelease();
    mu_.unlock();
  }
  bool try_lock() COLR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    rank_.OnAcquire();
    return true;
  }

  void AssertRankIs(SyncSite site) const { rank_.AssertMatches(site); }

 private:
  std::mutex mu_;
  COLR_NO_UNIQUE_ADDRESS LockRankTag rank_;
};

/// Annotated drop-in for std::shared_mutex (same rationale as Mutex).
class COLR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(SyncSite site) : rank_(site) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() COLR_ACQUIRE() {
    rank_.OnAcquire();
    mu_.lock();
  }
  void unlock() COLR_RELEASE() {
    rank_.OnRelease();
    mu_.unlock();
  }
  bool try_lock() COLR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    rank_.OnAcquire();
    return true;
  }
  // Shared holds participate in ordering exactly like exclusive ones:
  // a reader nested inside the wrong lock deadlocks against a writer
  // all the same.
  void lock_shared() COLR_ACQUIRE_SHARED() {
    rank_.OnAcquire();
    mu_.lock_shared();
  }
  void unlock_shared() COLR_RELEASE_SHARED() {
    rank_.OnRelease();
    mu_.unlock_shared();
  }
  bool try_lock_shared() COLR_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    rank_.OnAcquire();
    return true;
  }

  /// StripedMutex ranks its stripes post-construction (arrays cannot
  /// forward constructor arguments).
  void SetRank(SyncSite site) { rank_ = LockRankTag(site); }
  void AssertRankIs(SyncSite site) const { rank_.AssertMatches(site); }

 private:
  std::shared_mutex mu_;
  COLR_NO_UNIQUE_ADDRESS LockRankTag rank_;
};

/// RAII exclusive guard over Mutex (the annotated sibling of
/// std::lock_guard for uninstrumented sites; protocol lock sites with
/// a SyncSite use SyncTimedLock instead).
class COLR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COLR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  /// Site-naming form: what the static lock-order lint reads at the
  /// call site. The named site must match the mutex's constructed rank
  /// (checked when the detector is armed, so the annotation cannot
  /// drift from the lock it guards).
  MutexLock(Mutex& mu, SyncSite site) COLR_ACQUIRE(mu) : mu_(mu) {
    mu_.AssertRankIs(site);
    mu_.lock();
  }
  ~MutexLock() COLR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared guard over SharedMutex.
class COLR_SCOPED_CAPABILITY SharedMutexReaderLock {
 public:
  explicit SharedMutexReaderLock(SharedMutex& mu) COLR_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  SharedMutexReaderLock(SharedMutex& mu, SyncSite site)
      COLR_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.AssertRankIs(site);
    mu_.lock_shared();
  }
  ~SharedMutexReaderLock() COLR_RELEASE_SHARED() { mu_.unlock_shared(); }

  SharedMutexReaderLock(const SharedMutexReaderLock&) = delete;
  SharedMutexReaderLock& operator=(const SharedMutexReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Striped (sharded) lock table: maps an integer key (node id, sensor
/// id, ...) onto a small fixed set of shared mutexes so that fine-
/// grained state — e.g. one slot cache per COLR-Tree node — can be
/// locked per entity without paying one mutex per entity. Collisions
/// only cost false contention, never correctness.
///
/// Lock discipline (see DESIGN.md "Concurrency model"): a thread holds
/// at most one stripe at a time, so stripe acquisition order can never
/// deadlock.
///
/// Static-analysis note: the stripe for a key is resolved at runtime,
/// which is aliasing the Clang thread-safety analysis cannot follow —
/// the returned SharedMutex is an annotated capability (so guard
/// objects over it are balanced), but per-key GUARDED_BY contracts on
/// striped data are documented in DESIGN.md §6 and enforced by TSan,
/// not by the static analysis.
class StripedMutex {
 public:
  explicit StripedMutex(size_t stripes = 64) : stripes_(stripes) {}
  /// All stripes share one SyncSite: the table is one protocol lock
  /// with many physical words, and the one-stripe-at-a-time discipline
  /// above means the detector treats a second same-site acquisition as
  /// the recursion bug it is.
  explicit StripedMutex(SyncSite site, size_t stripes = 64)
      : stripes_(stripes) {
    for (SharedMutex& mu : locks_) mu.SetRank(site);
  }

  SharedMutex& For(int64_t key) {
    return locks_[static_cast<size_t>(Mix(key)) % kMaxStripes % stripes_];
  }

  size_t stripes() const { return stripes_; }

 private:
  static uint64_t Mix(int64_t key) {
    // SplitMix64 finalizer: adjacent ids (siblings in the tree) land
    // on unrelated stripes.
    uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  static constexpr size_t kMaxStripes = 256;
  size_t stripes_;
  SharedMutex locks_[kMaxStripes];
};

/// Shared/exclusive latch that stamps an epoch number on every
/// exclusive section. Writers that only need the protected state to
/// stay *stable* (e.g. ColrTree inserts, which require the slot-window
/// head not to move mid-insert) hold it shared and proceed
/// concurrently; rare maintenance that *changes* that state (window
/// rolls, expunges, whole-tree consistency audits) holds it exclusive
/// and advances the epoch on release. The epoch counter gives tests
/// and diagnostics a cheap "how many exclusive maintenance sections
/// have completed" observable without any extra synchronization.
///
/// Meets the Lockable / SharedLockable requirements, so it composes
/// with std::lock_guard / std::shared_lock.
///
/// The shared side is reader-striped (a "big-reader" lock): each
/// thread read-locks only its own cache-line-padded stripe, so
/// concurrent shared acquisitions never touch a common line — a single
/// shared_mutex here would turn its lock word into an all-writers
/// contention point at millions of acquisitions per second. The
/// exclusive side acquires every stripe in index order (uniform order
/// across exclusive lockers, so they cannot deadlock; shared holders
/// hold exactly one stripe). Exclusive sections therefore cost
/// kStripes lock operations — the intended trade for latches whose
/// exclusive side is rare maintenance.
class COLR_CAPABILITY("EpochLatch") EpochLatch {
 public:
  EpochLatch() = default;
  /// The shared and exclusive sides are distinct protocol sites (they
  /// sit at different points in the acquired-after DAG: a roll may
  /// nest locks a mere stable-hold may not).
  EpochLatch(SyncSite shared_site, SyncSite exclusive_site)
      : shared_rank_(shared_site), exclusive_rank_(exclusive_site) {}

  void lock() COLR_ACQUIRE() {
    exclusive_rank_.OnAcquire();
    // The internal stripes are acquired in index order by every
    // exclusive locker; the detector sees the latch as one site.
    for (size_t i = 0; i < kStripes; ++i) stripes_[i].mu.lock();
  }
  void unlock() COLR_RELEASE() {
    epoch_.fetch_add(1, std::memory_order_release);
    exclusive_rank_.OnRelease();
    for (size_t i = kStripes; i-- > 0;) stripes_[i].mu.unlock();
  }
  bool try_lock() COLR_TRY_ACQUIRE(true) {
    for (size_t i = 0; i < kStripes; ++i) {
      if (!stripes_[i].mu.try_lock()) {
        while (i-- > 0) stripes_[i].mu.unlock();
        return false;
      }
    }
    exclusive_rank_.OnAcquire();
    return true;
  }

  void lock_shared() COLR_ACQUIRE_SHARED() {
    shared_rank_.OnAcquire();
    stripes_[MyStripe()].mu.lock_shared();
  }
  void unlock_shared() COLR_RELEASE_SHARED() {
    shared_rank_.OnRelease();
    stripes_[MyStripe()].mu.unlock_shared();
  }
  bool try_lock_shared() COLR_TRY_ACQUIRE_SHARED(true) {
    if (!stripes_[MyStripe()].mu.try_lock_shared()) return false;
    shared_rank_.OnAcquire();
    return true;
  }

  /// Accepts either side's site: SyncTimedLock names the exclusive
  /// site, SyncTimedSharedLock the shared one, and both guard types
  /// cross-check here.
  void AssertRankIs(SyncSite site) const {
    // One of the two must match; an unranked latch accepts anything.
    if (exclusive_rank_.MatchesExactly(site) ||
        shared_rank_.MatchesExactly(site)) {
      return;
    }
    shared_rank_.AssertMatches(site);
  }

  /// Number of completed exclusive sections.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  static constexpr size_t kStripes = 32;
  struct alignas(64) Stripe {
    std::shared_mutex mu;
  };

  /// Stable per-thread stripe index (round-robin at first use), so a
  /// thread's unlock_shared always releases the stripe its
  /// lock_shared took.
  static size_t MyStripe() {
    static std::atomic<size_t> next{0};
    static thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }

  Stripe stripes_[kStripes];
  std::atomic<uint64_t> epoch_{0};
  COLR_NO_UNIQUE_ADDRESS LockRankTag shared_rank_;
  COLR_NO_UNIQUE_ADDRESS LockRankTag exclusive_rank_;
};

/// Test-and-test-and-set spinlock for critical sections of a few
/// dozen nanoseconds that many threads hit on every operation (e.g.
/// ColrTree's root-region aggregate updates: two ring-buffer writes).
/// At that section length a std::mutex costs more in futex handoff
/// latency under contention than the protected work itself — waiters
/// sleep and wake in multi-microsecond turns, capping system
/// throughput at one wakeup per turn. Spinning keeps the handoff at
/// cache-coherence latency. Not fair; only use it where the hold time
/// is provably tiny and bounded.
///
/// Waiters spin a bounded number of iterations and then yield the
/// core: if the holder was preempted (oversubscribed or single-core
/// hosts), unbounded spinning would burn the holder's own CPU quantum
/// waiting for it to run again.
///
/// Meets the Lockable requirements (composes with std::lock_guard).
class COLR_CAPABILITY("SpinMutex") SpinMutex {
 public:
  SpinMutex() = default;
  explicit SpinMutex(SyncSite site) : rank_(site) {}

  void lock() COLR_ACQUIRE() {
    rank_.OnAcquire();
    while (locked_.exchange(true, std::memory_order_acquire)) {
      // Spin on a plain load so waiters share the line in the cache
      // until the holder's store invalidates it (test-and-test-and-set).
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinLimit) {
          CpuRelax();
        } else {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }
  bool try_lock() COLR_TRY_ACQUIRE(true) {
    if (locked_.load(std::memory_order_relaxed) ||
        locked_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    rank_.OnAcquire();
    return true;
  }
  void unlock() COLR_RELEASE() {
    rank_.OnRelease();
    locked_.store(false, std::memory_order_release);
  }

  void AssertRankIs(SyncSite site) const { rank_.AssertMatches(site); }

 private:
  static void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
  }

  static constexpr int kSpinLimit = 128;
  std::atomic<bool> locked_{false};
  COLR_NO_UNIQUE_ADDRESS LockRankTag rank_;
};

/// Copyable atomic counter. std::atomic is neither copyable nor
/// movable, which makes it awkward inside resizable containers and
/// value-semantics structs (SensorNetwork::Counters, cumulative query
/// stats); this wrapper restores copyability with the obvious
/// load/store semantics. All operations are relaxed: the counters are
/// statistics, ordered externally by the joins/barriers of whoever
/// reads them.
template <typename T>
class AtomicCounter {
 public:
  AtomicCounter(T v = T{}) : v_(v) {}  // NOLINT: implicit by design
  AtomicCounter(const AtomicCounter& o) : v_(o.load()) {}
  AtomicCounter& operator=(const AtomicCounter& o) {
    store(o.load());
    return *this;
  }
  AtomicCounter& operator=(T v) {
    store(v);
    return *this;
  }

  T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }
  T Add(T d) { return v_.fetch_add(d, std::memory_order_relaxed) + d; }
  AtomicCounter& operator+=(T d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator++() {
    v_.fetch_add(T{1}, std::memory_order_relaxed);
    return *this;
  }
  operator T() const { return load(); }  // NOLINT: implicit by design

  /// Atomically raises the stored value to at least `v`.
  void FetchMax(T v) {
    T cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<T> v_;
};

/// Copyable atomic double with relaxed load/store plus a CAS-based
/// fetch-add (portable even where atomic<double>::fetch_add is not
/// lock-free). Used for metadata that is read on hot query paths and
/// rewritten wholesale by maintenance (per-node mean availability,
/// accumulated latency totals).
class AtomicDouble {
 public:
  AtomicDouble(double v = 0.0) : v_(v) {}  // NOLINT: implicit by design
  AtomicDouble(const AtomicDouble& o) : v_(o.load()) {}
  AtomicDouble& operator=(const AtomicDouble& o) {
    store(o.load());
    return *this;
  }
  AtomicDouble& operator=(double v) {
    store(v);
    return *this;
  }

  double load() const { return v_.load(std::memory_order_relaxed); }
  void store(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  bool CompareExchangeWeak(double& expected, double desired) {
    return v_.compare_exchange_weak(expected, desired,
                                    std::memory_order_relaxed);
  }
  AtomicDouble& operator+=(double d) {
    Add(d);
    return *this;
  }
  operator double() const { return load(); }  // NOLINT: implicit by design

 private:
  std::atomic<double> v_;
};

/// Mixes a base seed with a per-task ordinal into an independent
/// 64-bit seed (SplitMix64). Used to give every concurrently executed
/// query its own deterministic RNG stream.
inline uint64_t DeriveSeed(uint64_t base, uint64_t ordinal) {
  uint64_t z = base + (ordinal + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace colr

#endif  // COLR_COMMON_SYNC_H_
