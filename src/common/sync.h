#ifndef COLR_COMMON_SYNC_H_
#define COLR_COMMON_SYNC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>

namespace colr {

/// Striped (sharded) lock table: maps an integer key (node id, sensor
/// id, ...) onto a small fixed set of shared_mutexes so that fine-
/// grained state — e.g. one slot cache per COLR-Tree node — can be
/// locked per entity without paying one mutex per entity. Collisions
/// only cost false contention, never correctness.
///
/// Lock discipline (see DESIGN.md "Concurrency model"): a thread holds
/// at most one stripe at a time, so stripe acquisition order can never
/// deadlock.
class StripedMutex {
 public:
  explicit StripedMutex(size_t stripes = 64) : stripes_(stripes) {}

  std::shared_mutex& For(int64_t key) {
    return locks_[static_cast<size_t>(Mix(key)) % kMaxStripes % stripes_];
  }

  size_t stripes() const { return stripes_; }

 private:
  static uint64_t Mix(int64_t key) {
    // SplitMix64 finalizer: adjacent ids (siblings in the tree) land
    // on unrelated stripes.
    uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  static constexpr size_t kMaxStripes = 256;
  size_t stripes_;
  std::shared_mutex locks_[kMaxStripes];
};

/// Copyable atomic counter. std::atomic is neither copyable nor
/// movable, which makes it awkward inside resizable containers and
/// value-semantics structs (SensorNetwork::Counters, cumulative query
/// stats); this wrapper restores copyability with the obvious
/// load/store semantics. All operations are relaxed: the counters are
/// statistics, ordered externally by the joins/barriers of whoever
/// reads them.
template <typename T>
class AtomicCounter {
 public:
  AtomicCounter(T v = T{}) : v_(v) {}  // NOLINT: implicit by design
  AtomicCounter(const AtomicCounter& o) : v_(o.load()) {}
  AtomicCounter& operator=(const AtomicCounter& o) {
    store(o.load());
    return *this;
  }
  AtomicCounter& operator=(T v) {
    store(v);
    return *this;
  }

  T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }
  T Add(T d) { return v_.fetch_add(d, std::memory_order_relaxed) + d; }
  AtomicCounter& operator+=(T d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  AtomicCounter& operator++() {
    v_.fetch_add(T{1}, std::memory_order_relaxed);
    return *this;
  }
  operator T() const { return load(); }  // NOLINT: implicit by design

  /// Atomically raises the stored value to at least `v`.
  void FetchMax(T v) {
    T cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<T> v_;
};

/// Copyable atomic double with relaxed load/store plus a CAS-based
/// fetch-add (portable even where atomic<double>::fetch_add is not
/// lock-free). Used for metadata that is read on hot query paths and
/// rewritten wholesale by maintenance (per-node mean availability,
/// accumulated latency totals).
class AtomicDouble {
 public:
  AtomicDouble(double v = 0.0) : v_(v) {}  // NOLINT: implicit by design
  AtomicDouble(const AtomicDouble& o) : v_(o.load()) {}
  AtomicDouble& operator=(const AtomicDouble& o) {
    store(o.load());
    return *this;
  }
  AtomicDouble& operator=(double v) {
    store(v);
    return *this;
  }

  double load() const { return v_.load(std::memory_order_relaxed); }
  void store(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  bool CompareExchangeWeak(double& expected, double desired) {
    return v_.compare_exchange_weak(expected, desired,
                                    std::memory_order_relaxed);
  }
  AtomicDouble& operator+=(double d) {
    Add(d);
    return *this;
  }
  operator double() const { return load(); }  // NOLINT: implicit by design

 private:
  std::atomic<double> v_;
};

/// Mixes a base seed with a per-task ordinal into an independent
/// 64-bit seed (SplitMix64). Used to give every concurrently executed
/// query its own deterministic RNG stream.
inline uint64_t DeriveSeed(uint64_t base, uint64_t ordinal) {
  uint64_t z = base + (ordinal + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace colr

#endif  // COLR_COMMON_SYNC_H_
